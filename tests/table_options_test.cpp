#include <gtest/gtest.h>

#include <cstdint>

#include "util/options.hpp"
#include "util/table.hpp"

namespace rcc {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"k", "ratio"});
  t.add_row({"2", "1.05"});
  t.add_row({"64", "1.12"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| k "), std::string::npos);
  EXPECT_NE(s.find("ratio"), std::string::npos);
  EXPECT_NE(s.find("1.05"), std::string::npos);
  EXPECT_NE(s.find("64"), std::string::npos);
  // Header separator row present.
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(TablePrinter, RowCount) {
  TablePrinter t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"x"});
  t.add_row({"y"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TablePrinter, FormatHelpers) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(std::uint64_t{12345}), "12345");
  EXPECT_EQ(TablePrinter::fmt(std::int64_t{-7}), "-7");
  EXPECT_EQ(TablePrinter::fmt_ratio(1.5), "1.500");
}

TEST(TablePrinter, WideCellsExpandColumn) {
  TablePrinter t({"x"});
  t.add_row({"a-very-long-cell"});
  const std::string s = t.str();
  EXPECT_NE(s.find("a-very-long-cell"), std::string::npos);
}

TEST(Options, DefaultsAreReturned) {
  Options opts("test");
  opts.flag("n", "100", "size").flag("p", "0.5", "prob").flag("v", "false", "verbose");
  char prog[] = "prog";
  char* argv[] = {prog};
  opts.parse(1, argv);
  EXPECT_EQ(opts.get_int("n"), 100);
  EXPECT_DOUBLE_EQ(opts.get_double("p"), 0.5);
  EXPECT_FALSE(opts.get_bool("v"));
}

TEST(Options, ParsesEqualsAndSpaceSyntax) {
  Options opts("test");
  opts.flag("n", "1", "").flag("name", "x", "");
  char prog[] = "prog";
  char a1[] = "--n=42";
  char a2[] = "--name";
  char a3[] = "hello";
  char* argv[] = {prog, a1, a2, a3};
  opts.parse(4, argv);
  EXPECT_EQ(opts.get_int("n"), 42);
  EXPECT_EQ(opts.get_string("name"), "hello");
}

TEST(Options, BoolParsing) {
  Options opts("test");
  opts.flag("a", "true", "").flag("b", "1", "").flag("c", "on", "").flag("d", "no", "");
  char prog[] = "prog";
  char* argv[] = {prog};
  opts.parse(1, argv);
  EXPECT_TRUE(opts.get_bool("a"));
  EXPECT_TRUE(opts.get_bool("b"));
  EXPECT_TRUE(opts.get_bool("c"));
  EXPECT_FALSE(opts.get_bool("d"));
}

Options parsed_single_flag(const std::string& value) {
  Options opts("test");
  opts.flag("x", value, "probe");
  char prog[] = "prog";
  char* argv[] = {prog};
  opts.parse(1, argv);
  return opts;
}

TEST(Options, BoundaryNumericValuesParse) {
  // The extremes of the representable ranges are values, not errors.
  EXPECT_EQ(parsed_single_flag("9223372036854775807").get_int("x"),
            INT64_MAX);
  EXPECT_EQ(parsed_single_flag("-9223372036854775808").get_int("x"),
            INT64_MIN);
  EXPECT_DOUBLE_EQ(parsed_single_flag("1e308").get_double("x"), 1e308);
  EXPECT_DOUBLE_EQ(parsed_single_flag("-1e308").get_double("x"), -1e308);
  // Gradual underflow to a subnormal is a faithful value (glibc flags it
  // with ERANGE anyway); only total underflow to zero is an error.
  EXPECT_DOUBLE_EQ(parsed_single_flag("1e-310").get_double("x"), 1e-310);
}

TEST(OptionsDeath, IntegerOverflowIsRejectedNotClamped) {
  // Regression: strtoll clamps out-of-range input to LLONG_MAX/LLONG_MIN and
  // only reports it via errno == ERANGE; strict parsing must exit(2) instead
  // of silently running with the saturated value.
  EXPECT_EXIT(parsed_single_flag("9223372036854775808").get_int("x"),
              ::testing::ExitedWithCode(2), "overflows the 64-bit integer");
  EXPECT_EXIT(parsed_single_flag("-99999999999999999999").get_int("x"),
              ::testing::ExitedWithCode(2), "overflows the 64-bit integer");
}

TEST(OptionsDeath, DoubleOverflowAndUnderflowAreRejected) {
  // strtod saturates overflow to +-HUGE_VAL and squashes underflow toward
  // zero, both with errno == ERANGE; either way the program would not run
  // with the value the user wrote.
  EXPECT_EXIT(parsed_single_flag("1e999").get_double("x"),
              ::testing::ExitedWithCode(2), "outside the representable");
  EXPECT_EXIT(parsed_single_flag("-1e999").get_double("x"),
              ::testing::ExitedWithCode(2), "outside the representable");
  EXPECT_EXIT(parsed_single_flag("1e-999").get_double("x"),
              ::testing::ExitedWithCode(2), "outside the representable");
}

TEST(OptionsDeath, MalformedNumbersAreRejected) {
  EXPECT_EXIT(parsed_single_flag("12abc").get_int("x"),
              ::testing::ExitedWithCode(2), "not a representable integer");
  EXPECT_EXIT(parsed_single_flag("").get_int("x"),
              ::testing::ExitedWithCode(2), "not a representable integer");
  EXPECT_EXIT(parsed_single_flag("0.5.1").get_double("x"),
              ::testing::ExitedWithCode(2), "not a representable number");
}


TEST(TablePrinter, CsvRendering) {
  TablePrinter t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "quote\"inside"});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

}  // namespace
}  // namespace rcc
