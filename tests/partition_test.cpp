#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(RandomPartition, PreservesEveryEdgeExactlyOnce) {
  Rng rng(1);
  const EdgeList el = gnp(300, 0.05, rng);
  const auto parts = random_partition(el, 7, rng);
  ASSERT_EQ(parts.size(), 7u);
  EdgeList merged = EdgeList::union_of(parts);
  EXPECT_EQ(merged.num_edges(), el.num_edges());
  EdgeList sorted_in = el;
  sorted_in.sort();
  merged.sort();
  for (std::size_t i = 0; i < merged.num_edges(); ++i) {
    EXPECT_EQ(merged[i], sorted_in[i]);
  }
}

TEST(RandomPartition, SingleMachineGetsEverything) {
  Rng rng(2);
  const EdgeList el = gnp(100, 0.1, rng);
  const auto parts = random_partition(el, 1, rng);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].num_edges(), el.num_edges());
}

TEST(RandomPartition, BalancedInExpectation) {
  Rng rng(3);
  const EdgeList el = gnp(600, 0.1, rng);  // ~18k edges
  const std::size_t k = 10;
  const auto parts = random_partition(el, k, rng);
  const PartitionStats stats = partition_stats(parts);
  const double expected = static_cast<double>(el.num_edges()) / k;
  EXPECT_NEAR(stats.mean_edges, expected, 1e-9);
  // 5-sigma binomial bound.
  const double sigma = std::sqrt(expected * (1.0 - 1.0 / k));
  EXPECT_GT(static_cast<double>(stats.min_edges), expected - 5 * sigma);
  EXPECT_LT(static_cast<double>(stats.max_edges), expected + 5 * sigma);
}

TEST(RandomPartition, MachineAssignmentIsUniformPerEdge) {
  EdgeList el(2);
  el.add(0, 1);
  Rng rng(4);
  const std::size_t k = 4;
  std::vector<int> counts(k, 0);
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    const auto parts = random_partition(el, k, rng);
    for (std::size_t i = 0; i < k; ++i) {
      if (!parts[i].empty()) ++counts[i];
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.25, 0.01);
  }
}

TEST(RandomPartitionWeighted, PreservesEdgesAndWeights) {
  WeightedEdgeList w;
  w.num_vertices = 10;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(9));
    w.add(u, static_cast<VertexId>(u + 1), rng.uniform_real(0.0, 5.0));
  }
  const auto parts = random_partition_weighted(w, 5, rng);
  std::size_t total = 0;
  double weight_total = 0.0;
  for (const auto& p : parts) {
    EXPECT_EQ(p.num_vertices, 10u);
    total += p.edges.size();
    for (const auto& e : p.edges) weight_total += e.weight;
  }
  EXPECT_EQ(total, 100u);
  double original_weight = 0.0;
  for (const auto& e : w.edges) original_weight += e.weight;
  EXPECT_DOUBLE_EQ(weight_total, original_weight);
}

TEST(SortedChunkPartition, ContiguousAndComplete) {
  Rng rng(6);
  const EdgeList el = gnp(100, 0.2, rng);
  const auto parts = sorted_chunk_partition(el, 4);
  std::size_t total = 0;
  for (const auto& p : parts) total += p.num_edges();
  EXPECT_EQ(total, el.num_edges());
  // Chunks are sorted and non-overlapping: last edge of part i <= first of i+1.
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i].empty() || parts[i + 1].empty()) continue;
    EXPECT_LE(parts[i][parts[i].num_edges() - 1], parts[i + 1][0]);
  }
}

TEST(ByVertexPartition, GroupsEdgesByLeftEndpoint) {
  Rng rng(7);
  const EdgeList el = gnp(50, 0.3, rng);
  const auto parts = by_vertex_partition(el, 5);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (const Edge& e : parts[i]) {
      EXPECT_EQ(e.u % 5, i);
    }
  }
}

TEST(PartitionStats, ComputesMinMaxMean) {
  std::vector<EdgeList> parts(3, EdgeList(4));
  parts[0].add(0, 1);
  parts[0].add(1, 2);
  parts[1].add(2, 3);
  const PartitionStats s = partition_stats(parts);
  EXPECT_EQ(s.min_edges, 0u);
  EXPECT_EQ(s.max_edges, 2u);
  EXPECT_DOUBLE_EQ(s.mean_edges, 1.0);
}


TEST(RandomVertexPartition, EveryEdgeOnItsEndpointsMachines) {
  Rng rng(20);
  const EdgeList el = gnp(200, 0.05, rng);
  const std::size_t k = 5;
  const auto parts = random_vertex_partition(el, k, rng);
  // Each edge appears once (same owner) or twice (different owners); the
  // union must contain every edge, and total copies <= 2m.
  std::size_t total = 0;
  for (const auto& p : parts) total += p.num_edges();
  EXPECT_GE(total, el.num_edges());
  EXPECT_LE(total, 2 * el.num_edges());
  EdgeList merged = EdgeList::union_of(parts);
  merged.dedup();
  EdgeList expected = el;
  expected.dedup();
  EXPECT_EQ(merged.num_edges(), expected.num_edges());
}

TEST(RandomVertexPartition, DuplicationRateMatchesModel) {
  // An edge is duplicated iff its endpoints land on different machines:
  // probability 1 - 1/k.
  Rng rng(21);
  const EdgeList el = gnp(400, 0.05, rng);
  const std::size_t k = 8;
  const auto parts = random_vertex_partition(el, k, rng);
  std::size_t total = 0;
  for (const auto& p : parts) total += p.num_edges();
  const double dup_rate =
      static_cast<double>(total - el.num_edges()) / el.num_edges();
  EXPECT_NEAR(dup_rate, 1.0 - 1.0 / k, 0.05);
}

}  // namespace
}  // namespace rcc
