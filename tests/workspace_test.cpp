// Round-persistent workspace suite: epoch-mark semantics, the per-round
// zero-allocation discipline of run_mpc_rounds, and seed-for-seed
// differentials proving the flat hot-path rewrites are bit-identical to the
// hash-based implementations they replaced (the references are re-implemented
// here, hash containers and all, exactly as the pre-workspace code had them).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coreset/kernel.hpp"
#include "coreset/weighted_coreset.hpp"
#include "graph/generators.hpp"
#include "graph/incremental_csr.hpp"
#include "matching/augmenting_paths.hpp"
#include "matching/blossom.hpp"
#include "matching/greedy.hpp"
#include "matching/matching.hpp"
#include "matching/max_matching.hpp"
#include "mpc/augmenting_rounds.hpp"
#include "mpc/coreset_mpc.hpp"
#include "mpc/filtering_mpc.hpp"
#include "mpc/mpc_engine.hpp"
#include "util/workspace.hpp"

namespace rcc {
namespace {

struct Instance {
  std::string name;
  EdgeList edges;
  VertexId left_size;
};

std::vector<Instance> instance_grid(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Instance> instances;
  instances.push_back({"gnp-sparse", gnp(300, 4.0 / 300, rng), 0});
  instances.push_back({"gnp-dense", gnp(120, 0.2, rng), 0});
  instances.push_back({"bipartite", random_bipartite(80, 100, 0.08, rng), 80});
  instances.push_back({"star-forest", star_forest(12, 15), 0});
  instances.push_back({"path", path(150), 0});
  instances.push_back({"cycle", cycle(101), 0});
  instances.push_back({"crown-forest", crown_forest(12, 4), 0});
  return instances;
}

constexpr std::uint64_t kSeeds[] = {101, 202, 303};

// ---------------------------------------------------------------------------
// Epoch-stamped containers.

TEST(EpochMarks, SetUnsetTestAcrossEpochs) {
  EpochMarks marks;
  marks.reset(8);
  EXPECT_FALSE(marks.test(3));
  marks.set(3);
  marks.set(5);
  EXPECT_TRUE(marks.test(3));
  EXPECT_TRUE(marks.test(5));
  marks.unset(3);
  EXPECT_FALSE(marks.test(3));
  EXPECT_TRUE(marks.test(5));
  marks.reset(8);  // epoch bump: everything cleared in O(1)
  for (std::size_t v = 0; v < 8; ++v) EXPECT_FALSE(marks.test(v));
  marks.set(0);
  marks.reset(16);  // growth keeps semantics
  EXPECT_FALSE(marks.test(0));
  EXPECT_FALSE(marks.test(15));
}

TEST(EpochMap, ValuesReadFreshPerEpoch) {
  EpochMap<VertexId> counts;
  counts.reset(4);
  EXPECT_EQ(counts.get(2), 0u);
  counts.ref(2) = 7;
  EXPECT_EQ(counts.get(2), 7u);
  counts.reset(4);
  EXPECT_EQ(counts.get(2), 0u);  // stale value invisible after the bump
  counts.ref(2) += 3;
  EXPECT_EQ(counts.get(2), 3u);
}

TEST(WorkspaceStats, CountsOnlyGrowth) {
  ProtocolWorkspace ws;
  ws.ensure_machines(2);
  MachineScratch& m0 = ws.machine(0);
  const std::uint64_t after_setup = ws.counters().allocations;
  m0.vertex_marks(100);
  const std::uint64_t grown = ws.counters().allocations;
  EXPECT_GT(grown, after_setup);
  m0.vertex_marks(100);  // same size: no growth
  m0.vertex_marks(50);   // smaller: no growth
  EXPECT_EQ(ws.counters().allocations, grown);
  m0.vertex_marks(200);  // larger: growth
  EXPECT_GT(ws.counters().allocations, grown);
}

// ---------------------------------------------------------------------------
// Allocation discipline: steady-state rounds of the executor perform zero
// workspace allocations (the per-round delta is recorded in each
// MpcRoundReport). Round 0 warms the buffers; every later round reuses them.

MpcEngineConfig roomy_config(std::size_t k, std::size_t rounds) {
  MpcEngineConfig config;
  config.mpc.num_machines = k;
  config.mpc.memory_words = std::uint64_t{1} << 40;
  config.max_rounds = rounds;
  return config;
}

void expect_steady_state_rounds_allocation_free(const MpcExecutionStats& stats,
                                                const std::string& what,
                                                std::size_t first_steady = 1) {
  ASSERT_GE(stats.per_round.size(), 1u) << what;
  for (std::size_t r = first_steady; r < stats.per_round.size(); ++r) {
    EXPECT_EQ(stats.per_round[r].workspace_allocations, 0u)
        << what << " round " << r << " grew workspace buffers";
  }
}

TEST(AllocationDiscipline, AugmentingRoundsAreWorkspaceAllocationFreeAfterRound0) {
  // The augmenting combiner recirculates every edge, so all five rounds do
  // full-size work — the strongest steady-state case on the pinned grid.
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      if (inst.edges.empty()) continue;
      Rng rng(seed);
      ProtocolWorkspace ws;
      AugmentingRoundsConfig aug;
      aug.max_path_length = 5;
      MpcEngineConfig config = roomy_config(4, 5);
      config.early_stop = false;
      Matching matched(inst.edges.num_vertices());
      // Drive the executor directly so the external workspace is observable.
      const auto build = [&](EdgeSpan piece, const PartitionContext& ctx,
                             Rng&) {
        return find_augmenting_paths(piece, matched, aug.max_path_length,
                                     ctx.scratch);
      };
      const auto account = [](const std::vector<AugmentingPath>& paths) {
        std::uint64_t words = 0;
        for (const AugmentingPath& p : paths) words += p.words();
        return MessageSize{0, words};
      };
      struct Fold {
        Matching& matched;
        std::size_t max_len;
        void absorb(std::vector<AugmentingPath>&, std::size_t,
                    MpcRoundContext&) {}
        EdgeList finish(std::vector<std::vector<AugmentingPath>>& all,
                        MpcRoundContext& ctx, Rng&) {
          EpochMarks& touched = ctx.coordinator_scratch().vertex_marks(
              matched.num_vertices());
          std::size_t applied = 0;
          for (auto& batch : all) {
            for (const AugmentingPath& p : batch) {
              bool conflict = false;
              for (VertexId v : p.vertices) {
                conflict = conflict || touched.test(v);
              }
              if (conflict || !is_valid_augmenting_path(p, matched)) continue;
              for (VertexId v : p.vertices) touched.set(v);
              apply_augmenting_path(matched, p);
              ++applied;
            }
          }
          ctx.note_progress(applied + 1);  // never stall the executor
          ctx.survivors_out().assign(ctx.active_edges());
          return std::move(ctx.survivors_out());
        }
      } fold{matched, aug.max_path_length};
      const MpcExecutionStats stats =
          run_mpc_rounds(inst.edges, config, inst.left_size, rng, nullptr,
                         build, account, fold, &ws);
      EXPECT_EQ(stats.engine_rounds, 5u) << inst.name;
      expect_steady_state_rounds_allocation_free(stats,
                                                 "augmenting/" + inst.name);
    }
  }
}

TEST(AllocationDiscipline, MatchingVcAndFilteringRoundsStopAllocatingAfterRound0) {
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      if (inst.edges.empty()) continue;
      {
        Rng rng(seed);
        ProtocolWorkspace ws;
        const auto result = coreset_mpc_matching_rounds(
            inst.edges, roomy_config(4, 4), inst.left_size, rng, nullptr, &ws);
        expect_steady_state_rounds_allocation_free(result.stats,
                                                   "matching/" + inst.name);
      }
      {
        Rng rng(seed);
        ProtocolWorkspace ws;
        const auto result = coreset_mpc_vertex_cover_rounds(
            inst.edges, roomy_config(4, 4), rng, nullptr, &ws);
        expect_steady_state_rounds_allocation_free(result.stats,
                                                   "vc/" + inst.name);
      }
      {
        Rng rng(seed);
        ProtocolWorkspace ws;
        MpcEngineConfig config = roomy_config(4, 8);
        config.mpc.memory_words =
            std::max<std::uint64_t>(64, inst.edges.num_edges());
        const auto result =
            filtering_mpc_rounds(inst.edges, config, rng, nullptr, &ws);
        expect_steady_state_rounds_allocation_free(result.stats,
                                                   "filtering/" + inst.name);
      }
    }
  }
}

TEST(AllocationDiscipline, SecondRunOnWarmWorkspaceAllocatesNothing) {
  // Cross-run reuse: a server keeping one workspace alive pays the warm-up
  // once; a second identical run must not grow any workspace buffer, round
  // 0 included.
  Rng gen(7);
  const EdgeList graph = gnp(400, 6.0 / 400, gen);
  ProtocolWorkspace ws;
  for (int run = 0; run < 2; ++run) {
    Rng rng(99);
    const std::uint64_t before = ws.counters().allocations;
    const auto result = coreset_mpc_matching_rounds(graph, roomy_config(4, 3),
                                                    0, rng, nullptr, &ws);
    if (run == 1) {
      EXPECT_EQ(ws.counters().allocations, before)
          << "second run on a warm workspace grew buffers";
    }
    EXPECT_TRUE(result.matching.valid());
  }
}

// ---------------------------------------------------------------------------
// Differentials: flat rewrites vs the hash-based references they replaced.

/// Reference subset_of exactly as matching.cpp had it (hash set of edges).
bool subset_of_reference(const Matching& m, EdgeSpan graph_edges) {
  std::unordered_set<Edge, EdgeHash> present(graph_edges.begin(),
                                             graph_edges.end());
  for (const Edge& e : m.to_edge_list()) {
    if (!present.count(e)) return false;
  }
  return true;
}

TEST(FlatRewriteDifferential, SubsetOfMatchesHashReference) {
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      Rng rng(seed);
      const Matching inside =
          greedy_maximal_matching(inst.edges, GreedyOrder::kRandom, rng);
      EXPECT_EQ(inside.subset_of(inst.edges),
                subset_of_reference(inside, inst.edges))
          << inst.name;
      EXPECT_TRUE(inside.subset_of(inst.edges)) << inst.name;

      // A fabricated matching over a denser universe: edges mostly absent.
      Matching outside(inst.edges.num_vertices());
      if (inst.edges.num_vertices() >= 4) {
        outside.match(0, inst.edges.num_vertices() - 1);
        EXPECT_EQ(outside.subset_of(inst.edges),
                  subset_of_reference(outside, inst.edges))
            << inst.name;
      }
    }
  }
}

/// Reference validity check exactly as augmenting_paths.cpp had it.
bool valid_path_reference(const AugmentingPath& path, const Matching& matching) {
  const std::size_t len = path.vertices.size();
  if (len < 2 || len % 2 != 0) return false;
  const VertexId n = matching.num_vertices();
  std::unordered_set<VertexId> seen;
  for (VertexId v : path.vertices) {
    if (v >= n || !seen.insert(v).second) return false;
  }
  if (matching.is_matched(path.vertices.front()) ||
      matching.is_matched(path.vertices.back())) {
    return false;
  }
  for (std::size_t i = 0; i + 1 < len; ++i) {
    const VertexId a = path.vertices[i];
    const VertexId b = path.vertices[i + 1];
    if (i % 2 == 0) {
      if (matching.is_matched(a) && matching.mate(a) == b) return false;
    } else {
      if (!matching.is_matched(a) || matching.mate(a) != b) return false;
    }
  }
  return true;
}

bool valid_path_reference(const AugmentingPath& path, const Matching& matching,
                          EdgeSpan edges) {
  if (!valid_path_reference(path, matching)) return false;
  std::unordered_set<Edge, EdgeHash> present;
  present.reserve(edges.num_edges());
  for (const Edge& e : edges) present.insert(e);
  for (std::size_t i = 0; i + 1 < path.vertices.size(); i += 2) {
    if (!present.count(make_edge(path.vertices[i], path.vertices[i + 1]))) {
      return false;
    }
  }
  return true;
}

TEST(FlatRewriteDifferential, PathValidatorsMatchHashReference) {
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      if (inst.edges.empty()) continue;
      Rng rng(seed);
      Matching m = greedy_maximal_matching(inst.edges, GreedyOrder::kRandom, rng);
      // Real candidate paths from the search...
      Matching partial(inst.edges.num_vertices());
      greedy_extend(partial, inst.edges.sample_edges(3, rng));
      const auto paths = find_augmenting_paths(inst.edges, partial, 5);
      for (const AugmentingPath& p : paths) {
        EXPECT_EQ(is_valid_augmenting_path(p, partial),
                  valid_path_reference(p, partial))
            << inst.name;
        EXPECT_EQ(is_valid_augmenting_path(p, partial, inst.edges),
                  valid_path_reference(p, partial, inst.edges))
            << inst.name;
      }
      // ...and malformed ones: repeats, matched endpoints, absent hops.
      std::vector<AugmentingPath> bad;
      bad.push_back(AugmentingPath{{0, 0}});
      bad.push_back(AugmentingPath{{0, 1, 2}});
      bad.push_back(AugmentingPath{{0, inst.edges.num_vertices() - 1}});
      if (m.size() > 0) {
        const Edge e = m.to_edge_list()[0];
        bad.push_back(AugmentingPath{{e.u, e.v}});
      }
      for (const AugmentingPath& p : bad) {
        EXPECT_EQ(is_valid_augmenting_path(p, m), valid_path_reference(p, m))
            << inst.name;
        EXPECT_EQ(is_valid_augmenting_path(p, m, inst.edges),
                  valid_path_reference(p, m, inst.edges))
            << inst.name;
      }
    }
  }
}

/// Reference Crouch-Stubbs weight lookup exactly as weighted_coreset.cpp had
/// it (unordered_map with max-merge).
WeightedCoresetOutput crouch_stubbs_reference(WeightedEdgeSpan piece,
                                              const PartitionContext& ctx,
                                              double class_base) {
  WeightedCoresetOutput out;
  out.edges.num_vertices = piece.num_vertices();
  std::unordered_map<Edge, double, EdgeHash> weight_of;
  weight_of.reserve(piece.num_edges() * 2);
  for (const WeightedEdge& we : piece) {
    auto [it, inserted] = weight_of.try_emplace(we.edge(), we.weight);
    if (!inserted && we.weight > it->second) it->second = we.weight;
  }
  const WeightClasses wc = split_weight_classes(piece, class_base);
  for (const EdgeList& cls : wc.classes) {
    if (cls.empty()) continue;
    EdgeList dedup_cls = cls;
    dedup_cls.dedup();
    const Matching m = maximum_matching(dedup_cls, ctx.left_size);
    for (const Edge& e : m.to_edge_list()) {
      out.edges.add(e.u, e.v, weight_of.at(e));
    }
  }
  return out;
}

TEST(FlatRewriteDifferential, WeightedCoresetMatchesHashReference) {
  for (std::uint64_t seed : kSeeds) {
    Rng rng(seed);
    WeightedEdgeList graph;
    graph.num_vertices = 120;
    for (int i = 0; i < 600; ++i) {
      const auto u = static_cast<VertexId>(rng.next_below(120));
      const auto v = static_cast<VertexId>(rng.next_below(120));
      if (u == v) continue;
      graph.add(u, v, 0.5 + rng.uniform01() * 64.0);
    }
    const PartitionContext ctx{graph.num_vertices, 1, 0, 0};
    const WeightedCoresetOutput flat =
        crouch_stubbs_coreset(WeightedEdgeSpan(graph), ctx, 2.0);
    const WeightedCoresetOutput reference =
        crouch_stubbs_reference(WeightedEdgeSpan(graph), ctx, 2.0);
    ASSERT_EQ(flat.edges.edges.size(), reference.edges.edges.size());
    for (std::size_t i = 0; i < flat.edges.edges.size(); ++i) {
      EXPECT_EQ(flat.edges.edges[i].u, reference.edges.edges[i].u);
      EXPECT_EQ(flat.edges.edges[i].v, reference.edges.edges[i].v);
      EXPECT_EQ(flat.edges.edges[i].weight, reference.edges.edges[i].weight);
    }
  }
}

/// Reference greedy-by-key exactly as greedy.cpp had it: std::function key
/// re-evaluated inside every stable_sort comparison.
Matching greedy_by_reference(EdgeSpan edges,
                             const std::function<double(const Edge&)>& key) {
  std::vector<std::size_t> idx(edges.num_edges());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return key(edges[a]) < key(edges[b]);
  });
  Matching m(edges.num_vertices());
  for (std::size_t i : idx) {
    const Edge& e = edges[i];
    if (!m.is_matched(e.u) && !m.is_matched(e.v)) m.match(e.u, e.v);
  }
  return m;
}

TEST(FlatRewriteDifferential, GreedyByPrecomputedKeysMatchesFunctionReference) {
  const auto keys = {
      std::function<double(const Edge&)>(
          [](const Edge& e) { return static_cast<double>(e.u) + e.v; }),
      std::function<double(const Edge&)>(
          [](const Edge& e) { return -static_cast<double>(e.v); }),
      std::function<double(const Edge&)>(
          [](const Edge& e) { return static_cast<double>(e.u % 3); }),  // ties
  };
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      for (const auto& key : keys) {
        const Matching flat = greedy_maximal_matching_by(
            EdgeSpan(inst.edges), key);
        const Matching reference = greedy_by_reference(inst.edges, key);
        ASSERT_EQ(flat.size(), reference.size()) << inst.name;
        for (VertexId v = 0; v < inst.edges.num_vertices(); ++v) {
          EXPECT_EQ(flat.mate(v), reference.mate(v)) << inst.name;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Scratch-vs-fresh differentials: every scratch-aware kernel must produce
// bit-identical results with a (repeatedly reused) workspace and without.

TEST(ScratchDifferential, KernelsAreIdenticalWithAndWithoutScratch) {
  ProtocolWorkspace ws;
  ws.ensure_machines(1);
  MachineScratch& scratch = ws.machine(0);
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      // find_augmenting_paths (the scratch is deliberately reused across
      // grid points — stale contents must never leak into a result).
      Matching partial(inst.edges.num_vertices());
      Rng rng(seed);
      greedy_extend(partial, inst.edges.sample_edges(4, rng));
      const auto fresh_paths = find_augmenting_paths(inst.edges, partial, 5);
      const auto scratch_paths =
          find_augmenting_paths(inst.edges, partial, 5, &scratch);
      ASSERT_EQ(fresh_paths.size(), scratch_paths.size()) << inst.name;
      for (std::size_t i = 0; i < fresh_paths.size(); ++i) {
        EXPECT_EQ(fresh_paths[i].vertices, scratch_paths[i].vertices)
            << inst.name;
      }

      // vertex_cap_kernel.
      for (VertexId cap : {1u, 2u, 5u}) {
        const EdgeList fresh = vertex_cap_kernel(inst.edges, cap);
        const EdgeList reused = vertex_cap_kernel(inst.edges, cap, &scratch);
        ASSERT_EQ(fresh.num_edges(), reused.num_edges()) << inst.name;
        for (std::size_t i = 0; i < fresh.num_edges(); ++i) {
          EXPECT_EQ(fresh[i], reused[i]) << inst.name;
        }
      }

      // greedy orders.
      Rng rng_a(seed);
      Rng rng_b(seed);
      const Matching ga =
          greedy_maximal_matching(inst.edges, GreedyOrder::kRandom, rng_a);
      const Matching gb = greedy_maximal_matching(
          inst.edges, GreedyOrder::kRandom, rng_b, &scratch);
      ASSERT_EQ(ga.size(), gb.size()) << inst.name;
      for (VertexId v = 0; v < inst.edges.num_vertices(); ++v) {
        EXPECT_EQ(ga.mate(v), gb.mate(v)) << inst.name;
      }

      // maximum matching (HK and blossom dispatch).
      const Matching fresh_max = maximum_matching(inst.edges, inst.left_size);
      const Matching reused_max =
          maximum_matching(inst.edges, inst.left_size, &scratch);
      ASSERT_EQ(fresh_max.size(), reused_max.size()) << inst.name;
      for (VertexId v = 0; v < inst.edges.num_vertices(); ++v) {
        EXPECT_EQ(fresh_max.mate(v), reused_max.mate(v)) << inst.name;
      }
    }
  }
}

TEST(ScratchDifferential, BlossomPruningIsExact) {
  // Hungarian-tree pruning must not change the matching SIZE (it only skips
  // provably dead exploration; the edges chosen may differ).
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      const Graph g((EdgeSpan(inst.edges)));
      const Matching pruned =
          blossom_maximum_matching(g, nullptr, /*prune_hungarian_trees=*/true);
      const Matching exhaustive = blossom_maximum_matching(
          g, nullptr, /*prune_hungarian_trees=*/false);
      EXPECT_EQ(pruned.size(), exhaustive.size()) << inst.name;
      EXPECT_TRUE(pruned.valid()) << inst.name;
      EXPECT_TRUE(exhaustive.valid()) << inst.name;
      EXPECT_TRUE(pruned.subset_of(inst.edges)) << inst.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Executor-level differential: a run with an external workspace must be
// seed-for-seed identical to a run with the internal one (and to a second
// run reusing the warmed workspace).

TEST(WorkspaceDifferential, ExecutorResultsIndependentOfWorkspaceReuse) {
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      MpcEngineConfig config = roomy_config(4, 3);
      Rng rng_internal(seed);
      const auto internal = coreset_mpc_matching_rounds(
          inst.edges, config, inst.left_size, rng_internal);

      ProtocolWorkspace ws;
      for (int run = 0; run < 2; ++run) {  // second run = warm buffers
        Rng rng(seed);
        const auto external = coreset_mpc_matching_rounds(
            inst.edges, config, inst.left_size, rng, nullptr, &ws);
        ASSERT_EQ(external.matching.size(), internal.matching.size())
            << inst.name << " run " << run;
        for (VertexId v = 0; v < inst.edges.num_vertices(); ++v) {
          EXPECT_EQ(external.matching.mate(v), internal.matching.mate(v))
              << inst.name << " run " << run;
        }
        EXPECT_EQ(external.stats.engine_rounds, internal.stats.engine_rounds)
            << inst.name;
        EXPECT_EQ(external.stats.total_comm_words,
                  internal.stats.total_comm_words)
            << inst.name;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Incremental CSR: the counting-sort build must be bit-identical to the
// sort-based reference it replaced, in-place compaction must be bit-identical
// to a fresh build over the filtered edge list, and the signature must let
// ensure() reuse in exactly the cases the contract promises.

/// Reference adjacency exactly as the pre-PR6 hot path had it: counting
/// scatter into a flat CSR followed by a per-row std::sort.
struct ReferenceCsr {
  std::vector<std::size_t> offsets;
  std::vector<VertexId> neighbors;

  explicit ReferenceCsr(EdgeSpan edges) {
    const std::size_t n = edges.num_vertices();
    offsets.assign(n + 1, 0);
    for (const Edge& e : edges) {
      ++offsets[e.u + 1];
      ++offsets[e.v + 1];
    }
    for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
    neighbors.resize(offsets[n]);
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge& e : edges) {
      neighbors[cursor[e.u]++] = e.v;
      neighbors[cursor[e.v]++] = e.u;
    }
    for (std::size_t v = 0; v < n; ++v) {
      std::sort(neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
    }
  }
};

void expect_csr_equals_reference(const IncrementalCsr& csr,
                                 const ReferenceCsr& ref,
                                 const std::string& what) {
  const std::size_t n = ref.offsets.size() - 1;
  ASSERT_EQ(csr.num_vertices(), n) << what;
  ASSERT_EQ(csr.num_arcs(), ref.neighbors.size()) << what;
  for (std::size_t v = 0; v <= n; ++v) {
    ASSERT_EQ(csr.offsets_data()[v], ref.offsets[v]) << what << " offset " << v;
  }
  for (std::size_t i = 0; i < ref.neighbors.size(); ++i) {
    ASSERT_EQ(csr.arcs_data()[i], ref.neighbors[i]) << what << " arc " << i;
  }
}

TEST(IncrementalCsr, CountingSortBuildMatchesSortBasedReference) {
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      IncrementalCsr csr;
      csr.build(inst.edges);
      expect_csr_equals_reference(csr, ReferenceCsr(inst.edges), inst.name);
    }
  }
}

TEST(IncrementalCsr, EnsureReusesOnSameMultisetAndRebuildsOnChange) {
  Rng rng(7);
  EdgeList edges = gnp(200, 0.05, rng);
  IncrementalCsr csr;
  EXPECT_FALSE(csr.ensure(edges));  // cold: rebuild
  EXPECT_TRUE(csr.ensure(edges));   // identical span: reuse
  // Same multiset, permuted order: the sorted CSR is a function of the
  // multiset, so this must reuse too.
  EdgeList shuffled(edges.num_vertices());
  std::vector<Edge> perm(edges.begin(), edges.end());
  std::reverse(perm.begin(), perm.end());
  for (const Edge& e : perm) shuffled.add(e);
  EXPECT_TRUE(csr.ensure(shuffled));
  // Different edge set: rebuild, and the result matches a cold build.
  EdgeList pruned(edges.num_vertices());
  for (std::size_t i = 0; i + 1 < edges.num_edges(); ++i) {
    pruned.add(edges.begin()[i]);
  }
  EXPECT_FALSE(csr.ensure(pruned));
  expect_csr_equals_reference(csr, ReferenceCsr(pruned), "pruned");
  EXPECT_EQ(csr.rebuilds(), 2u);
  EXPECT_EQ(csr.reuses(), 2u);
}

TEST(IncrementalCsr, CompactionMatchesRebuildOverSurvivorGrid) {
  // Survivor chain mirroring the broadcast-and-filter protocol: each step
  // drops the vertices matched by a greedy pass (plus a modulus mask for
  // variety), compacts the cached CSR in place, and checks it against a
  // fresh counting-sort build over the independently filtered edge list.
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      IncrementalCsr csr;
      csr.build(inst.edges);
      EdgeList survivors(inst.edges.num_vertices());
      survivors.assign(inst.edges);
      for (int step = 0; step < 3 && survivors.num_edges() > 0; ++step) {
        Rng greedy_rng(seed + static_cast<std::uint64_t>(step));
        const Matching greedy =
            greedy_maximal_matching(survivors, GreedyOrder::kRandom, greedy_rng);
        const VertexId modulus = static_cast<VertexId>(5 + step);
        const auto keep = [&](VertexId v) {
          return !greedy.is_matched(v) || v % modulus == 0;
        };
        csr.compact(keep);
        EdgeList filtered(survivors.num_vertices());
        filtered.assign_filtered(
            survivors, [&](const Edge& e) { return keep(e.u) && keep(e.v); });
        expect_csr_equals_reference(csr, ReferenceCsr(filtered),
                                    inst.name + " step " +
                                        std::to_string(step));
        // The recomputed signature must make the compacted CSR
        // indistinguishable from a fresh build: ensure() over the filtered
        // list reuses instead of rebuilding.
        const std::uint64_t reuses_before = csr.reuses();
        EXPECT_TRUE(csr.ensure(filtered)) << inst.name << " step " << step;
        EXPECT_EQ(csr.reuses(), reuses_before + 1);
        survivors.assign(filtered);
      }
      EXPECT_GE(csr.compactions(), 1u);
    }
  }
}

TEST(IncrementalCsr, SearchResultsIdenticalAcrossColdAndWarmScratch) {
  // The augmenting searcher routes its adjacency through the workspace CSR;
  // alternating edge sets through one warm scratch (forcing the
  // rebuild/reuse state machine through every transition) must give the
  // same paths as fresh cold scratches.
  for (std::uint64_t seed : kSeeds) {
    const std::vector<Instance> grid = instance_grid(seed);
    MachineScratch warm;
    for (const Instance& inst : grid) {
      Rng rng(seed);
      const Matching greedy =
          greedy_maximal_matching(inst.edges, GreedyOrder::kRandom, rng);
      // First warm search rebuilds (the scratch CSR still holds the
      // previous instance), the second reuses; both must equal a cold run.
      const std::uint64_t reuses_before =
          warm.state<IncrementalCsr>().reuses();
      for (int pass = 0; pass < 2; ++pass) {
        const auto warm_paths =
            find_augmenting_paths(inst.edges, greedy, 5, &warm);
        const auto cold_paths = find_augmenting_paths(inst.edges, greedy, 5);
        ASSERT_EQ(warm_paths.size(), cold_paths.size())
            << inst.name << " pass " << pass;
        for (std::size_t i = 0; i < warm_paths.size(); ++i) {
          EXPECT_EQ(warm_paths[i].vertices, cold_paths[i].vertices)
              << inst.name << " pass " << pass;
        }
      }
      EXPECT_EQ(warm.state<IncrementalCsr>().reuses(), reuses_before + 1)
          << inst.name;
    }
  }
}

}  // namespace
}  // namespace rcc
