#include "matching/matching.hpp"

#include <gtest/gtest.h>

namespace rcc {
namespace {

TEST(Matching, StartsEmpty) {
  Matching m(5);
  EXPECT_EQ(m.size(), 0u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_FALSE(m.is_matched(v));
  EXPECT_TRUE(m.valid());
}

TEST(Matching, MatchAndMates) {
  Matching m(4);
  m.match(0, 2);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.is_matched(0));
  EXPECT_TRUE(m.is_matched(2));
  EXPECT_EQ(m.mate(0), 2u);
  EXPECT_EQ(m.mate(2), 0u);
  EXPECT_EQ(m.mate(1), kInvalidVertex);
  EXPECT_TRUE(m.valid());
}

TEST(MatchingDeathTest, DoubleMatchAborts) {
  Matching m(4);
  m.match(0, 1);
  EXPECT_DEATH(m.match(1, 2), "RCC_CHECK");
}

TEST(Matching, Unmatch) {
  Matching m(4);
  m.match(0, 1);
  m.unmatch(1);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.is_matched(0));
  m.unmatch(2);  // no-op on unmatched vertex
  EXPECT_EQ(m.size(), 0u);
}

TEST(Matching, ToEdgeListNormalized) {
  Matching m(6);
  m.match(5, 2);
  m.match(0, 3);
  EdgeList el = m.to_edge_list();
  el.sort();
  EXPECT_EQ(el.num_edges(), 2u);
  EXPECT_EQ(el[0], make_edge(0, 3));
  EXPECT_EQ(el[1], make_edge(2, 5));
}

TEST(Matching, FromEdgesRoundTrip) {
  EdgeList el(6);
  el.add(0, 1);
  el.add(2, 3);
  const Matching m = Matching::from_edges(el);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.mate(0), 1u);
  EXPECT_EQ(m.mate(3), 2u);
}

TEST(MatchingDeathTest, FromEdgesRejectsNonMatching) {
  EdgeList el(4);
  el.add(0, 1);
  el.add(1, 2);
  EXPECT_DEATH(Matching::from_edges(el), "RCC_CHECK");
}

TEST(Matching, SubsetOf) {
  EdgeList graph(4);
  graph.add(0, 1);
  graph.add(2, 3);
  graph.add(1, 2);
  Matching m(4);
  m.match(0, 1);
  EXPECT_TRUE(m.subset_of(graph));
  Matching bogus(4);
  bogus.match(0, 3);  // not a graph edge
  EXPECT_FALSE(bogus.subset_of(graph));
}

TEST(Matching, MaximalIn) {
  EdgeList graph(4);
  graph.add(0, 1);
  graph.add(2, 3);
  Matching m(4);
  m.match(0, 1);
  EXPECT_FALSE(m.maximal_in(graph));  // (2,3) addable
  m.match(2, 3);
  EXPECT_TRUE(m.maximal_in(graph));
}

}  // namespace
}  // namespace rcc
