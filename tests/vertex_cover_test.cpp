#include "vertex_cover/vertex_cover.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "matching/hopcroft_karp.hpp"
#include "vertex_cover/approx.hpp"
#include "vertex_cover/exact.hpp"
#include "vertex_cover/forest.hpp"
#include "vertex_cover/konig.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(VertexCoverType, InsertAndSize) {
  VertexCover c(5);
  EXPECT_EQ(c.size(), 0u);
  c.insert(2);
  c.insert(2);  // idempotent
  c.insert(4);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(c.contains(2));
  EXPECT_FALSE(c.contains(0));
  EXPECT_EQ(c.vertices(), (std::vector<VertexId>{2, 4}));
}

TEST(VertexCoverType, CoversDetection) {
  EdgeList el(4);
  el.add(0, 1);
  el.add(2, 3);
  VertexCover c(4);
  c.insert(0);
  EXPECT_FALSE(c.covers(el));
  c.insert(2);
  EXPECT_TRUE(c.covers(el));
}

TEST(VertexCoverType, Merge) {
  VertexCover a(4), b(4);
  a.insert(0);
  b.insert(0);
  b.insert(3);
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(TwoApprox, AlwaysCoversAndIsEvenSized) {
  Rng rng(1);
  for (int rep = 0; rep < 10; ++rep) {
    const EdgeList el = gnp(120, 0.05, rng);
    const VertexCover c = vc_two_approximation(el, rng);
    EXPECT_TRUE(c.covers(el));
    // The cover is both endpoints of a matching, hence even-sized.
    EXPECT_EQ(c.size() % 2, 0u);
  }
}

TEST(TwoApprox, RatioAgainstKonigOnBipartite) {
  Rng rng(2);
  for (int rep = 0; rep < 10; ++rep) {
    const EdgeList el = random_bipartite(80, 80, 0.05, rng);
    const VertexCover c = vc_two_approximation(el, rng);
    EXPECT_TRUE(c.covers(el));
    const std::size_t opt = konig_vc_size(bipartite_graph(el, 80));
    EXPECT_LE(c.size(), 2 * opt);
  }
}

TEST(GreedyMaxDegree, CoversAndBeatsTrivialBound) {
  Rng rng(3);
  for (int rep = 0; rep < 10; ++rep) {
    const EdgeList el = gnp(150, 0.04, rng);
    const VertexCover c = vc_greedy_max_degree(el);
    EXPECT_TRUE(c.covers(el));
    EXPECT_LE(c.size(), 150u);
  }
}

TEST(GreedyMaxDegree, StarTakesCenter) {
  const EdgeList el = star(20);
  const VertexCover c = vc_greedy_max_degree(el);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_TRUE(c.contains(0));
}

TEST(Konig, SizeEqualsMaximumMatching) {
  Rng rng(4);
  for (int rep = 0; rep < 10; ++rep) {
    const EdgeList el = random_bipartite(60, 60, 0.08, rng);
    const Graph g = bipartite_graph(el, 60);
    const VertexCover c = konig_min_vertex_cover(g);
    EXPECT_TRUE(c.covers(el));
    EXPECT_EQ(c.size(), hopcroft_karp(g).size());
  }
}

TEST(Konig, PerfectMatchingInstance) {
  Rng rng(99);
  const EdgeList el = random_perfect_matching(50, rng);
  const VertexCover c = konig_min_vertex_cover(bipartite_graph(el, 50));
  EXPECT_EQ(c.size(), 50u);
  EXPECT_TRUE(c.covers(el));
}

TEST(Konig, StarCoversWithCenter) {
  // Star with center on the left: L = {0}, R = leaves.
  EdgeList el(6);
  for (VertexId v = 1; v < 6; ++v) el.add(0, v);
  const VertexCover c = konig_min_vertex_cover(bipartite_graph(el, 1));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_TRUE(c.contains(0));
}

TEST(ExactBnB, KnownValues) {
  EXPECT_EQ(exact_min_vertex_cover_size(EdgeList(5)), 0u);
  EXPECT_EQ(exact_min_vertex_cover_size(star(10)), 1u);
  EXPECT_EQ(exact_min_vertex_cover_size(path(4)), 2u);  // e.g. {1, 3}
}

TEST(ExactBnB, PathAndCycleFormulae) {
  // Path on n vertices: VC = floor(n/2). Cycle: ceil(n/2).
  EXPECT_EQ(exact_min_vertex_cover_size(path(2)), 1u);
  EXPECT_EQ(exact_min_vertex_cover_size(path(5)), 2u);
  EXPECT_EQ(exact_min_vertex_cover_size(path(6)), 3u);
  EXPECT_EQ(exact_min_vertex_cover_size(cycle(5)), 3u);
  EXPECT_EQ(exact_min_vertex_cover_size(cycle(6)), 3u);
  EXPECT_EQ(exact_min_vertex_cover_size(cycle(7)), 4u);
}

class ExactVsKonig : public ::testing::TestWithParam<int> {};

TEST_P(ExactVsKonig, AgreeOnSmallBipartiteGraphs) {
  Rng rng(GetParam());
  const EdgeList el = random_bipartite(12, 12, 0.2, rng);
  const std::size_t exact = exact_min_vertex_cover_size(el);
  const std::size_t konig = konig_vc_size(bipartite_graph(el, 12));
  EXPECT_EQ(exact, konig);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsKonig, ::testing::Range(1, 21));

TEST(ForestMinVc, StarTakesCenterWhenMultipleEdges) {
  const VertexCover c = forest_min_vertex_cover(star(10), ForestTieBreak::kHighId);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_TRUE(c.contains(0));
}

TEST(ForestMinVc, SingleEdgeTieBreak) {
  EdgeList el(2);
  el.add(0, 1);
  EXPECT_TRUE(forest_min_vertex_cover(el, ForestTieBreak::kHighId).contains(1));
  EXPECT_TRUE(forest_min_vertex_cover(el, ForestTieBreak::kLowId).contains(0));
}

TEST(ForestMinVc, PathIsOptimal) {
  for (VertexId n : {2u, 3u, 4u, 5u, 8u, 13u}) {
    const VertexCover c = forest_min_vertex_cover(path(n), ForestTieBreak::kLowId);
    EXPECT_TRUE(c.covers(path(n)));
    EXPECT_EQ(c.size(), exact_min_vertex_cover_size(path(n))) << n;
  }
}

class ForestOptimality : public ::testing::TestWithParam<int> {};

TEST_P(ForestOptimality, MatchesBranchAndBoundOnRandomForests) {
  // Build a random forest: random parent links.
  Rng rng(GetParam() + 50);
  const VertexId n = 40;
  EdgeList el(n);
  for (VertexId v = 1; v < n; ++v) {
    if (rng.bernoulli(0.85)) {
      el.add(static_cast<VertexId>(rng.next_below(v)), v);
    }
  }
  const VertexCover c = forest_min_vertex_cover(el, ForestTieBreak::kHighId);
  EXPECT_TRUE(c.covers(el));
  EXPECT_EQ(c.size(), exact_min_vertex_cover_size(el));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForestOptimality, ::testing::Range(1, 16));

TEST(ForestMinVcDeathTest, RejectsCycles) {
  EXPECT_DEATH(forest_min_vertex_cover(cycle(4), ForestTieBreak::kLowId),
               "RCC_CHECK");
}

}  // namespace
}  // namespace rcc
