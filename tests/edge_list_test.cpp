#include "graph/edge_list.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(Edge, MakeEdgeNormalizes) {
  const Edge e = make_edge(5, 2);
  EXPECT_EQ(e.u, 2u);
  EXPECT_EQ(e.v, 5u);
  EXPECT_EQ(make_edge(2, 5), e);
}

TEST(Edge, OtherEndpoint) {
  const Edge e = make_edge(3, 8);
  EXPECT_EQ(e.other(3), 8u);
  EXPECT_EQ(e.other(8), 3u);
}

TEST(Edge, HashEqualForBothOrientations) {
  EdgeHash h;
  EXPECT_EQ(h(make_edge(1, 2)), h(make_edge(2, 1)));
  EXPECT_NE(h(make_edge(1, 2)), h(make_edge(1, 3)));
}

TEST(EdgeList, AddNormalizesAndCounts) {
  EdgeList el(10);
  el.add(7, 3);
  el.add(1, 2);
  EXPECT_EQ(el.num_edges(), 2u);
  EXPECT_EQ(el[0], make_edge(3, 7));
}

TEST(EdgeList, ConstructorNormalizesGivenEdges) {
  EdgeList el(5, {{3, 1}, {0, 4}});
  EXPECT_EQ(el[0], make_edge(1, 3));
  EXPECT_EQ(el[1], make_edge(0, 4));
}

TEST(EdgeListDeathTest, SelfLoopRejected) {
  EdgeList el(5);
  EXPECT_DEATH(el.add(2, 2), "RCC_CHECK");
}

TEST(EdgeList, Degrees) {
  EdgeList el(4);
  el.add(0, 1);
  el.add(0, 2);
  el.add(0, 3);
  el.add(1, 2);
  const auto deg = el.degrees();
  EXPECT_EQ(deg[0], 3u);
  EXPECT_EQ(deg[1], 2u);
  EXPECT_EQ(deg[2], 2u);
  EXPECT_EQ(deg[3], 1u);
}

TEST(EdgeList, DegreesCountParallelEdges) {
  EdgeList el(3);
  el.add(0, 1);
  el.add(1, 0);
  const auto deg = el.degrees();
  EXPECT_EQ(deg[0], 2u);
  EXPECT_EQ(deg[1], 2u);
}

TEST(EdgeList, DedupRemovesParallelEdges) {
  EdgeList el(3);
  el.add(0, 1);
  el.add(1, 0);
  el.add(1, 2);
  EXPECT_TRUE(el.has_parallel_edges());
  el.dedup();
  EXPECT_EQ(el.num_edges(), 2u);
  EXPECT_FALSE(el.has_parallel_edges());
}

TEST(EdgeList, SortOrdersLexicographically) {
  EdgeList el(5);
  el.add(3, 4);
  el.add(0, 2);
  el.add(0, 1);
  el.sort();
  EXPECT_EQ(el[0], make_edge(0, 1));
  EXPECT_EQ(el[1], make_edge(0, 2));
  EXPECT_EQ(el[2], make_edge(3, 4));
}

TEST(EdgeList, FilterKeepsMatchingEdges) {
  EdgeList el(6);
  for (VertexId v = 1; v < 6; ++v) el.add(0, v);
  const EdgeList odd = el.filter([](const Edge& e) { return e.v % 2 == 1; });
  EXPECT_EQ(odd.num_edges(), 3u);  // 1, 3, 5
}

TEST(EdgeList, AppendConcatenates) {
  EdgeList a(4);
  a.add(0, 1);
  EdgeList b(4);
  b.add(2, 3);
  a.append(b);
  EXPECT_EQ(a.num_edges(), 2u);
}

TEST(EdgeList, UnionOfParts) {
  EdgeList a(4), b(4), c(4);
  a.add(0, 1);
  b.add(1, 2);
  c.add(2, 3);
  const EdgeList u = EdgeList::union_of({a, b, c});
  EXPECT_EQ(u.num_edges(), 3u);
  EXPECT_EQ(u.num_vertices(), 4u);
}

TEST(EdgeList, SampleEdgesExactCount) {
  EdgeList el(100);
  for (VertexId v = 1; v < 100; ++v) el.add(0, v);
  Rng rng(1);
  const EdgeList sampled = el.sample_edges(10, rng);
  EXPECT_EQ(sampled.num_edges(), 10u);
  EXPECT_FALSE(sampled.has_parallel_edges());
}

TEST(EdgeList, SampleMoreThanAvailableReturnsAll) {
  EdgeList el(5);
  el.add(0, 1);
  el.add(2, 3);
  Rng rng(2);
  EXPECT_EQ(el.sample_edges(10, rng).num_edges(), 2u);
}

TEST(EdgeList, SubsampleRateZeroAndOne) {
  EdgeList el(10);
  for (VertexId v = 1; v < 10; ++v) el.add(0, v);
  Rng rng(3);
  EXPECT_EQ(el.subsample(0.0, rng).num_edges(), 0u);
  EXPECT_EQ(el.subsample(1.0, rng).num_edges(), 9u);
}

TEST(EdgeList, SubsampleExpectedSize) {
  EdgeList el(10000);
  for (VertexId v = 1; v < 10000; ++v) el.add(0, v);
  Rng rng(4);
  double total = 0;
  const int reps = 50;
  for (int r = 0; r < reps; ++r) {
    total += static_cast<double>(el.subsample(0.3, rng).num_edges());
  }
  EXPECT_NEAR(total / reps / 9999.0, 0.3, 0.02);
}

TEST(EdgeList, EmptyBehaviour) {
  EdgeList el(3);
  EXPECT_TRUE(el.empty());
  EXPECT_EQ(el.degrees().size(), 3u);
  Rng rng(5);
  EXPECT_TRUE(el.subsample(0.5, rng).empty());
  EXPECT_TRUE(el.sample_edges(5, rng).empty());
}

}  // namespace
}  // namespace rcc
