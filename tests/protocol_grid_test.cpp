// Protocol-grid property sweep: the headline invariants checked across a
// grid of (instance family x machine count x seed), including the
// vertex-partition model. One parameterized suite, every cell asserting:
//   - the composed matching is a valid matching made of real graph edges;
//   - it clears Theorem 1's factor-9 floor;
//   - the composed cover is feasible;
//   - communication is within the per-machine O(n) envelope.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "coreset/matching_coresets.hpp"
#include "distributed/protocols.hpp"
#include "graph/generators.hpp"
#include "matching/max_matching.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

struct GridInstance {
  EdgeList edges;
  VertexId left_size = 0;
};

GridInstance make_instance(const std::string& family, Rng& rng) {
  const VertexId n = 1500;
  if (family == "gnp") return {gnp(n, 5.0 / n, rng), 0};
  if (family == "bipartite") {
    return {random_bipartite(n / 2, n / 2, 8.0 / n, rng),
            static_cast<VertexId>(n / 2)};
  }
  if (family == "powerlaw") return {chung_lu_power_law(n, 2.4, 6.0, rng), 0};
  if (family == "planted") {
    EdgeList planted = random_perfect_matching(n / 2, rng);
    planted.append(gnp(n, 2.0 / n, rng));
    return {std::move(planted), 0};
  }
  RCC_CHECK(false);
  return {};
}

class ProtocolGrid
    : public ::testing::TestWithParam<std::tuple<std::string, int, int>> {};

TEST_P(ProtocolGrid, MatchingInvariants) {
  const auto [family, k, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 1000003);
  const GridInstance inst = make_instance(family, rng);
  const std::size_t opt =
      maximum_matching_size(inst.edges, inst.left_size);
  if (opt == 0) GTEST_SKIP();

  const MatchingProtocolResult r = coreset_matching_protocol(
      inst.edges, static_cast<std::size_t>(k), inst.left_size, rng, nullptr);
  EXPECT_TRUE(r.solution.valid());
  EXPECT_TRUE(r.solution.subset_of(inst.edges));
  EXPECT_GE(9 * r.solution.size(), opt);
  EXPECT_LE(r.solution.size(), opt);
  // Per-machine message within the O(n) envelope (a matching).
  EXPECT_LE(r.comm.max_machine_words(),
            static_cast<std::uint64_t>(inst.edges.num_vertices()));
}

TEST_P(ProtocolGrid, VertexCoverInvariants) {
  const auto [family, k, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 2000003);
  const GridInstance inst = make_instance(family, rng);
  const VcProtocolResult r =
      coreset_vc_protocol(inst.edges, static_cast<std::size_t>(k), rng, nullptr);
  EXPECT_TRUE(r.solution.covers(inst.edges));
  // A cover never exceeds the vertex count; with matching LB, never less
  // than MM (weak sanity both ways).
  EXPECT_LE(r.solution.size(), inst.edges.num_vertices());
  EXPECT_GE(r.solution.size(), maximum_matching_size(inst.edges, inst.left_size));
}

TEST_P(ProtocolGrid, VertexPartitionModelStillSound) {
  // The [10] vertex-partition model duplicates cross-machine edges; the
  // engine must still produce valid output (guarantees differ; soundness
  // must not).
  const auto [family, k, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 3000017);
  const GridInstance inst = make_instance(family, rng);
  const auto pieces =
      random_vertex_partition(inst.edges, static_cast<std::size_t>(k), rng);
  const MaximumMatchingCoreset coreset;
  const MatchingProtocolResult r = run_matching_protocol_on_partition(
      pieces, coreset, ComposeSolver::kMaximum, inst.left_size, rng, nullptr);
  EXPECT_TRUE(r.solution.valid());
  EXPECT_TRUE(r.solution.subset_of(inst.edges));
  // In this model every machine holds all edges of its vertices, so the
  // composition is at least as good as the edge-partition coreset in
  // expectation; assert the same factor-9 floor.
  EXPECT_GE(9 * r.solution.size(),
            maximum_matching_size(inst.edges, inst.left_size));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolGrid,
    ::testing::Combine(::testing::Values("gnp", "bipartite", "powerlaw",
                                         "planted"),
                       ::testing::Values(2, 8, 24),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace rcc
