// MPC simulator tests: the 2-round coreset algorithm (R5) versus the
// filtering baseline of Lattanzi et al.
#include "mpc/coreset_mpc.hpp"
#include "mpc/filtering_mpc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "matching/max_matching.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(MpcConfig, PaperDefaultScalesAsNSqrtN) {
  const MpcConfig cfg = MpcConfig::paper_default(10000);
  EXPECT_EQ(cfg.num_machines, 100u);
  // ~ c * n^{1.5} * log n words.
  EXPECT_GT(cfg.memory_words, 1000000u);
}

TEST(MpcLedger, TracksRoundsAndPeakMemory) {
  MpcLedger ledger(MpcConfig{4, 1000});
  ledger.begin_round("a");
  ledger.charge(0, 300);
  ledger.charge(0, 200);
  ledger.charge(1, 100);
  ledger.begin_round("b");
  ledger.charge(2, 400);
  EXPECT_EQ(ledger.rounds(), 2u);
  EXPECT_EQ(ledger.max_memory_words(), 500u);
  EXPECT_EQ(ledger.round_labels()[0], "a");
}

TEST(MpcLedgerDeathTest, MemoryCapEnforced) {
  MpcLedger ledger(MpcConfig{2, 100});
  ledger.begin_round("r");
  ledger.charge(0, 60);
  EXPECT_DEATH(ledger.charge(0, 60), "RCC_CHECK");
}

TEST(MpcLedgerDeathTest, ChargeBeforeRoundAborts) {
  MpcLedger ledger(MpcConfig{2, 100});
  EXPECT_DEATH(ledger.charge(0, 1), "RCC_CHECK");
}

TEST(CoresetMpc, TwoRoundsFromAdversarialPlacement) {
  Rng rng(1);
  const VertexId n = 4096;
  const EdgeList el = gnp(n, 6.0 / n, rng);
  const MpcConfig cfg = MpcConfig::paper_default(n);
  const CoresetMpcMatchingResult r =
      coreset_mpc_matching(el, cfg, /*input_already_random=*/false, 0, rng);
  EXPECT_EQ(r.rounds, 2u);
  EXPECT_TRUE(r.matching.valid());
  EXPECT_TRUE(r.matching.subset_of(el));
  EXPECT_LE(r.max_memory_words, cfg.memory_words);
  EXPECT_GE(9 * r.matching.size(), maximum_matching_size(el));
}

TEST(CoresetMpc, OneRoundWhenInputAlreadyRandom) {
  Rng rng(2);
  const VertexId n = 4096;
  const EdgeList el = gnp(n, 6.0 / n, rng);
  const MpcConfig cfg = MpcConfig::paper_default(n);
  const CoresetMpcMatchingResult r =
      coreset_mpc_matching(el, cfg, /*input_already_random=*/true, 0, rng);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_TRUE(r.matching.valid());
}

TEST(CoresetMpc, VertexCoverTwoRoundsAndFeasible) {
  Rng rng(3);
  const VertexId n = 4096;
  const EdgeList el = gnp(n, 6.0 / n, rng);
  const MpcConfig cfg = MpcConfig::paper_default(n);
  const CoresetMpcVcResult r =
      coreset_mpc_vertex_cover(el, cfg, /*input_already_random=*/false, rng);
  EXPECT_EQ(r.rounds, 2u);
  EXPECT_TRUE(r.cover.covers(el));
  EXPECT_LE(r.max_memory_words, cfg.memory_words);
}

TEST(FilteringMpc, ProducesMaximalMatchingAndCover) {
  Rng rng(4);
  const VertexId n = 1000;
  const EdgeList el = gnp(n, 0.08, rng);  // ~40k edges
  MpcConfig cfg;
  cfg.num_machines = 10;
  cfg.memory_words = 2 * 8000;  // 8k edges per machine: forces filtering
  const FilteringMpcResult r = filtering_mpc(el, cfg, rng);
  EXPECT_TRUE(r.maximal_matching.maximal_in(el));
  EXPECT_TRUE(r.cover.covers(el));
  EXPECT_GE(r.filter_iterations, 1u);
  EXPECT_GE(r.rounds, 3u);  // at least one iteration (2 rounds) + finish
  EXPECT_LE(r.max_memory_words, cfg.memory_words);
}

TEST(FilteringMpc, SingleRoundWhenGraphFits) {
  Rng rng(5);
  const EdgeList el = gnp(500, 0.01, rng);
  MpcConfig cfg;
  cfg.num_machines = 4;
  cfg.memory_words = 10 * 2 * el.num_edges();
  const FilteringMpcResult r = filtering_mpc(el, cfg, rng);
  EXPECT_EQ(r.filter_iterations, 0u);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_TRUE(r.maximal_matching.maximal_in(el));
}

TEST(FilteringMpc, TwoApproximationGuarantee) {
  Rng rng(6);
  const VertexId n = 800;
  const EdgeList el = gnp(n, 0.05, rng);
  MpcConfig cfg;
  cfg.num_machines = 8;
  cfg.memory_words = 2 * 5000;
  const FilteringMpcResult r = filtering_mpc(el, cfg, rng);
  const std::size_t opt = maximum_matching_size(el);
  EXPECT_GE(2 * r.maximal_matching.size(), opt);
  EXPECT_LE(r.cover.size(), 2 * opt);
}

TEST(CoresetVsFiltering, CoresetUsesFewerRoundsAtPaperMemory) {
  // Memory ~ 3 n^{1.5} words (the paper's regime without the log slack):
  // the graph is denser than one machine's memory, so filtering must
  // iterate, while the coreset algorithm always finishes in 2 rounds.
  Rng rng(7);
  const VertexId n = 2000;
  const EdgeList el = gnp(n, 0.2, rng);  // ~400k edges
  MpcConfig cfg;
  cfg.num_machines = 45;  // ~sqrt(n)
  cfg.memory_words = static_cast<std::uint64_t>(
      3.0 * std::pow(static_cast<double>(n), 1.5));
  ASSERT_GT(2 * el.num_edges(), cfg.memory_words);  // filtering must iterate
  const CoresetMpcMatchingResult coreset =
      coreset_mpc_matching(el, cfg, false, 0, rng);
  const FilteringMpcResult filtering = filtering_mpc(el, cfg, rng);
  EXPECT_EQ(coreset.rounds, 2u);
  EXPECT_GE(filtering.rounds, 3u);
  EXPECT_LT(coreset.rounds, filtering.rounds);
}

TEST(InitialAdversarialPlacement, CompleteAndChunked) {
  Rng rng(8);
  const EdgeList el = gnp(200, 0.1, rng);
  const auto placed = initial_adversarial_placement(el, 5);
  std::size_t total = 0;
  for (const auto& p : placed) total += p.num_edges();
  EXPECT_EQ(total, el.num_edges());
}

}  // namespace
}  // namespace rcc
