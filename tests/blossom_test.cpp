#include "matching/blossom.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

/// Brute-force maximum matching size by edge-subset recursion (small m).
std::size_t brute_force_mm(const EdgeList& edges) {
  std::size_t best = 0;
  std::vector<bool> used(edges.num_vertices(), false);
  auto rec = [&](auto&& self, std::size_t i, std::size_t size) -> void {
    best = std::max(best, size);
    if (i == edges.num_edges()) return;
    self(self, i + 1, size);
    const Edge& e = edges[i];
    if (!used[e.u] && !used[e.v]) {
      used[e.u] = used[e.v] = true;
      self(self, i + 1, size + 1);
      used[e.u] = used[e.v] = false;
    }
  };
  rec(rec, 0, 0);
  return best;
}

TEST(Blossom, OddCycleMatchesFloorHalf) {
  for (VertexId n : {3u, 5u, 7u, 9u, 11u}) {
    const Matching m = blossom_maximum_matching(Graph(cycle(n)));
    EXPECT_EQ(m.size(), n / 2) << "cycle " << n;
    EXPECT_TRUE(m.valid());
  }
}

TEST(Blossom, EvenCyclePerfect) {
  for (VertexId n : {4u, 6u, 10u}) {
    EXPECT_EQ(blossom_maximum_matching(Graph(cycle(n))).size(), n / 2);
  }
}

TEST(Blossom, PathMatching) {
  EXPECT_EQ(blossom_maximum_matching(Graph(path(2))).size(), 1u);
  EXPECT_EQ(blossom_maximum_matching(Graph(path(5))).size(), 2u);
  EXPECT_EQ(blossom_maximum_matching(Graph(path(6))).size(), 3u);
}

TEST(Blossom, TriangleWithPendants) {
  // Triangle 0-1-2 plus pendants 3 on 0 and 4 on 1: maximum matching = 2.
  EdgeList el(5);
  el.add(0, 1);
  el.add(1, 2);
  el.add(0, 2);
  el.add(0, 3);
  el.add(1, 4);
  EXPECT_EQ(blossom_maximum_matching(Graph(el)).size(), 2u);
}

TEST(Blossom, PetersenGraphHasPerfectMatching) {
  // Standard Petersen construction: outer 5-cycle, inner 5-star polygon,
  // spokes. 10 vertices, 15 edges, perfect matching exists.
  EdgeList el(10);
  for (VertexId i = 0; i < 5; ++i) el.add(i, (i + 1) % 5);
  for (VertexId i = 0; i < 5; ++i) el.add(5 + i, 5 + (i + 2) % 5);
  for (VertexId i = 0; i < 5; ++i) el.add(i, 5 + i);
  const Matching m = blossom_maximum_matching(Graph(el));
  EXPECT_EQ(m.size(), 5u);
  EXPECT_TRUE(m.valid());
}

TEST(Blossom, TwoTrianglesJoinedByEdge) {
  // Triangles {0,1,2} and {3,4,5} plus bridge 2-3: perfect matching size 3.
  EdgeList el(6);
  el.add(0, 1);
  el.add(1, 2);
  el.add(0, 2);
  el.add(3, 4);
  el.add(4, 5);
  el.add(3, 5);
  el.add(2, 3);
  EXPECT_EQ(blossom_maximum_matching(Graph(el)).size(), 3u);
}

TEST(Blossom, EmptyAndSingleEdge) {
  EXPECT_EQ(blossom_maximum_matching(Graph(EdgeList(4))).size(), 0u);
  EdgeList el(2);
  el.add(0, 1);
  EXPECT_EQ(blossom_maximum_matching(Graph(el)).size(), 1u);
}

class BlossomVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(BlossomVsBruteForce, AgreesOnSmallRandomGraphs) {
  Rng rng(GetParam());
  const VertexId n = 12;
  const EdgeList el = gnp(n, 0.25, rng);
  if (el.num_edges() > 24) GTEST_SKIP() << "brute force too large";
  const Matching m = blossom_maximum_matching(Graph(el));
  EXPECT_EQ(m.size(), brute_force_mm(el));
  EXPECT_TRUE(m.valid());
  EXPECT_TRUE(m.subset_of(el));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlossomVsBruteForce, ::testing::Range(1, 30));

class BlossomOddStructures : public ::testing::TestWithParam<int> {};

TEST_P(BlossomOddStructures, DenseRandomGraphNearPerfect) {
  // G(n, 8/n) with even n has a near-perfect matching w.h.p.; we assert at
  // least 90% of the vertices get matched (blossoms are exercised heavily).
  Rng rng(GetParam() + 100);
  const VertexId n = 200;
  const EdgeList el = gnp(n, 8.0 / n, rng);
  const Matching m = blossom_maximum_matching(Graph(el));
  EXPECT_GE(m.size() * 2, static_cast<std::size_t>(0.9 * n));
  EXPECT_TRUE(m.valid());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlossomOddStructures, ::testing::Range(1, 6));

}  // namespace
}  // namespace rcc
