#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace rcc {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowOneIsZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_int(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricSkipMeanMatchesTheory) {
  // E[failures before success] = (1-p)/p.
  Rng rng(23);
  const double p = 0.2;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric_skip(p));
  EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.1);
}

TEST(Rng, GeometricSkipWithProbabilityOneIsZero) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric_skip(1.0), 0u);
}

TEST(Rng, SampleDistinctProducesDistinctValuesInUniverse) {
  Rng rng(31);
  const auto sample = rng.sample_distinct(1000, 200);
  EXPECT_EQ(sample.size(), 200u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 200u);
  for (auto v : sample) EXPECT_LT(v, 1000u);
}

TEST(Rng, SampleDistinctWholeUniverse) {
  Rng rng(37);
  auto sample = rng.sample_distinct(50, 50);
  std::sort(sample.begin(), sample.end());
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleDistinctUniformity) {
  // Each element of [10] should appear in a size-5 sample w.p. 1/2.
  Rng rng(41);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (auto v : rng.sample_distinct(10, 5)) ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.5, 0.02);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(43);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleUniformFirstElement) {
  Rng rng(47);
  std::vector<int> counts(5, 0);
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> v{0, 1, 2, 3, 4};
    rng.shuffle(v);
    ++counts[v[0]];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.2, 0.01);
  }
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(99);
  Rng parent2(99);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
  // Parent stream continues deterministically after the fork.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(parent1.next_u64(), parent2.next_u64());
}

TEST(Rng, ForkDiffersFromParent) {
  Rng parent(101);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

class RngChiSquared : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngChiSquared, NextBelowIsUniform) {
  const std::uint64_t buckets = GetParam();
  Rng rng(buckets * 7919 + 1);
  std::vector<std::uint64_t> counts(buckets, 0);
  const std::uint64_t draws = 20000 * buckets;
  for (std::uint64_t i = 0; i < draws; ++i) ++counts[rng.next_below(buckets)];
  const double expected = static_cast<double>(draws) / buckets;
  double chi2 = 0.0;
  for (auto c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  // 99.9th percentile of chi^2 with (buckets-1) dof is well below 3*buckets
  // for these sizes; generous bound to avoid flakiness.
  EXPECT_LT(chi2, 3.0 * static_cast<double>(buckets) + 30.0);
}

INSTANTIATE_TEST_SUITE_P(Buckets, RngChiSquared,
                         ::testing::Values(2, 3, 7, 10, 16, 101));

}  // namespace
}  // namespace rcc
