// Tests for the weighted matching simultaneous protocol.
#include "distributed/weighted_matching_protocol.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace rcc {
namespace {

WeightedEdgeList random_weighted_bipartite(VertexId side, double p, double wmax,
                                           Rng& rng) {
  WeightedEdgeList w;
  w.num_vertices = 2 * side;
  for (VertexId u = 0; u < side; ++u) {
    for (VertexId v = side; v < 2 * side; ++v) {
      if (rng.bernoulli(p)) w.add(u, v, rng.uniform_real(1.0, wmax));
    }
  }
  return w;
}

TEST(WeightedMatchingProtocol, ProducesValidMatchingWithAccounting) {
  Rng rng(1);
  const VertexId side = 300;
  const WeightedEdgeList graph = random_weighted_bipartite(side, 0.05, 64.0, rng);
  const WeightedMatchingProtocolResult r =
      weighted_matching_protocol(graph, 6, side, rng);
  EXPECT_TRUE(r.solution.valid());
  EXPECT_GT(r.matching_weight, 0.0);
  EXPECT_EQ(r.comm.per_machine.size(), 6u);
  EXPECT_GT(r.comm.total_words(), 0u);
  EXPECT_GE(r.max_classes_per_machine, 1u);
  EXPECT_LE(r.max_classes_per_machine, 8u);  // log2(64) + rounding
}

TEST(WeightedMatchingProtocol, QualityVsCentralizedGreedy) {
  Rng rng(2);
  const VertexId side = 400;
  const WeightedEdgeList graph = random_weighted_bipartite(side, 0.04, 128.0, rng);
  const WeightedMatchingProtocolResult r =
      weighted_matching_protocol(graph, 8, side, rng);
  const double central = matching_weight(greedy_weighted_matching(graph), graph);
  EXPECT_GE(r.matching_weight * 4.0, central);
}

TEST(WeightedMatchingProtocol, ParallelMatchesSequential) {
  Rng gen(3);
  const WeightedEdgeList graph = random_weighted_bipartite(250, 0.05, 32.0, gen);
  ThreadPool pool(4);
  Rng a(9), b(9);
  const auto seq = weighted_matching_protocol(graph, 5, 250, a, nullptr);
  const auto par = weighted_matching_protocol(graph, 5, 250, b, &pool);
  EXPECT_DOUBLE_EQ(seq.matching_weight, par.matching_weight);
  EXPECT_EQ(seq.comm.total_words(), par.comm.total_words());
}

TEST(WeightedMatchingProtocol, SingleMachineMatchesCentralizedCrouchStubbs) {
  Rng rng(4);
  const VertexId side = 200;
  const WeightedEdgeList graph = random_weighted_bipartite(side, 0.06, 16.0, rng);
  const WeightedMatchingProtocolResult r =
      weighted_matching_protocol(graph, 1, side, rng);
  const double central =
      matching_weight(crouch_stubbs_matching(graph, side), graph);
  // One machine = centralized Crouch-Stubbs up to the machine's own merge;
  // allow small slack from the extra coordinator merge pass.
  EXPECT_GE(r.matching_weight * 1.5, central);
}

TEST(WeightedMatchingProtocol, EmptyGraph) {
  Rng rng(5);
  WeightedEdgeList empty;
  empty.num_vertices = 10;
  const WeightedMatchingProtocolResult r =
      weighted_matching_protocol(empty, 4, 0, rng);
  EXPECT_EQ(r.solution.size(), 0u);
  EXPECT_DOUBLE_EQ(r.matching_weight, 0.0);
}

}  // namespace
}  // namespace rcc
