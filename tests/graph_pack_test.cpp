// The .rgp pack format + mmap loader (graph/graph_pack.hpp) and the
// EdgeSource seam (graph/edge_source.hpp):
//
//   (a) round trip: GraphPack::write -> MappedGraph reproduces every
//       generator family edge-for-edge (weighted packs bit-exactly, order
//       preserved), and the streaming PackWriter produces byte-identical
//       files to the whole-list convenience,
//   (b) the refactor's differential: every protocol driver and round-
//       combiner run from a mapped pack equals the in-memory EdgeList path
//       seed-for-seed — exact solutions, word-exact communication ledgers,
//       and the caller's RNG stream position — including through the
//       forked-worker socket transport,
//   (c) adversarial inputs die with a "graph pack:" diagnostic naming the
//       defect (bad magic/version/flags, truncated header or records, a
//       lying edge count, out-of-universe endpoints, self-loops,
//       unnormalized records, NaN/negative weights), mirroring
//       summary_wire_test's frame suite,
//   (d) mechanics: move semantics keep the mapping alive, drop_resident
//       releases pages without changing the bytes behind the views.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "coreset/matching_coresets.hpp"
#include "coreset/vc_coreset.hpp"
#include "distributed/protocol.hpp"
#include "distributed/protocols.hpp"
#include "distributed/weighted_matching_protocol.hpp"
#include "distributed/weighted_vc_protocol.hpp"
#include "graph/edge_source.hpp"
#include "graph/generators.hpp"
#include "graph/graph_pack.hpp"
#include "mpc/augmenting_rounds.hpp"
#include "mpc/coreset_mpc.hpp"
#include "mpc/edcs_rounds.hpp"
#include "mpc/filtering_mpc.hpp"
#include "mpc/mpc_engine.hpp"

namespace rcc {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "graph_pack_test_" + name;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Writes a small valid unweighted pack and returns its bytes for
/// corruption: n = 6, edges (0,1) (2,5) (3,4).
std::vector<std::uint8_t> valid_pack_bytes(const std::string& path) {
  EdgeList el(6);
  el.add(0, 1);
  el.add(2, 5);
  el.add(3, 4);
  GraphPack::write(el, path);
  return read_file(path);
}

std::vector<Edge> sorted_edges(const Matching& m) {
  EdgeList el = m.to_edge_list();
  el.sort();
  return el.edges();
}

// ---------------------------------------------------------------- round trip

TEST(GraphPack, RoundTripsEveryGeneratorFamily) {
  Rng rng(99);
  const HubGadget hub = hub_gadget(24, 3);
  const std::vector<std::pair<std::string, EdgeList>> families = {
      {"gnp", gnp(200, 6.0 / 200, rng)},
      {"gnm", gnm(150, 900, rng)},
      {"random_bipartite", random_bipartite(60, 80, 0.07, rng)},
      {"left_regular_bipartite", left_regular_bipartite(40, 50, 3, rng)},
      {"random_perfect_matching", random_perfect_matching(64, rng)},
      {"complete_bipartite", complete_bipartite(12, 17)},
      {"crown", crown(9)},
      {"crown_forest", crown_forest(5, 3)},
      {"star", star(33)},
      {"star_forest", star_forest(6, 7)},
      {"path", path(41)},
      {"cycle", cycle(29)},
      {"chung_lu", chung_lu_power_law(180, 2.5, 6.0, rng)},
      {"hub_gadget", hub.edges},
      {"empty", EdgeList(17)},
  };
  for (const auto& [name, el] : families) {
    const std::string path = tmp_path("family_" + name + ".rgp");
    GraphPack::write(el, path);
    const MappedGraph mapped(path);
    EXPECT_FALSE(mapped.weighted()) << name;
    EXPECT_EQ(mapped.num_vertices(), el.num_vertices()) << name;
    ASSERT_EQ(mapped.num_edges(), el.num_edges()) << name;
    EXPECT_EQ(mapped.file_bytes(),
              kPackHeaderBytes + sizeof(Edge) * el.num_edges());
    const EdgeSpan view = mapped.edges();
    for (std::size_t i = 0; i < el.num_edges(); ++i) {
      ASSERT_EQ(view[i], el[i]) << name << " record " << i;
    }
    std::remove(path.c_str());
  }
}

TEST(GraphPack, WeightedRoundTripIsBitExactAndOrderPreserving) {
  Rng rng(7);
  WeightedEdgeList w;
  w.num_vertices = 50;
  for (int i = 0; i < 400; ++i) {
    auto u = static_cast<VertexId>(rng.next_below(50));
    auto v = static_cast<VertexId>(rng.next_below(49));
    if (v >= u) ++v;
    // Deliberately unnormalized endpoint order and awkward weights
    // (subnormals, zero, huge): all must survive the file bit for bit.
    double weight = rng.uniform_real(0.0, 1e30);
    if (i % 7 == 0) weight = 0.0;
    if (i % 11 == 0) weight = std::numeric_limits<double>::denorm_min();
    w.add(u, v, weight);
  }
  const std::string path = tmp_path("weighted.rgp");
  GraphPack::write(w, path);
  const MappedGraph mapped(path);
  EXPECT_TRUE(mapped.weighted());
  EXPECT_EQ(mapped.num_vertices(), w.num_vertices);
  ASSERT_EQ(mapped.num_edges(), w.edges.size());
  const WeightedEdgeSpan view = mapped.weighted_edges();
  for (std::size_t i = 0; i < w.edges.size(); ++i) {
    EXPECT_EQ(view[i].u, w.edges[i].u) << i;
    EXPECT_EQ(view[i].v, w.edges[i].v) << i;
    EXPECT_EQ(std::memcmp(&view[i].weight, &w.edges[i].weight, sizeof(double)),
              0)
        << "weight bits differ at record " << i;
  }
  std::remove(path.c_str());
}

TEST(GraphPack, StreamingWriterMatchesWholeListConvenienceByteForByte) {
  Rng rng(3);
  const EdgeList el = gnp(120, 0.08, rng);
  const std::string whole = tmp_path("whole.rgp");
  const std::string streamed = tmp_path("streamed.rgp");
  GraphPack::write(el, whole);
  {
    PackWriter writer(streamed, el.num_vertices(), /*weighted=*/false);
    for (const Edge& e : el) writer.add(e.v, e.u);  // normalized on the way out
    EXPECT_EQ(writer.edges_written(), el.num_edges());
    // finish() left to the destructor: the RAII path must also patch m.
  }
  EXPECT_EQ(read_file(whole), read_file(streamed));
  std::remove(whole.c_str());
  std::remove(streamed.c_str());
}

TEST(GraphPack, MoveTransfersTheMapping) {
  const std::string path = tmp_path("move.rgp");
  (void)valid_pack_bytes(path);
  MappedGraph a(path);
  const MappedGraph b(std::move(a));
  EXPECT_EQ(b.num_vertices(), 6u);
  ASSERT_EQ(b.num_edges(), 3u);
  EXPECT_EQ(b.edges()[1], make_edge(2, 5));
  MappedGraph c(path);
  c = MappedGraph(path);  // move-assign over a live mapping
  EXPECT_EQ(c.num_edges(), 3u);
  std::remove(path.c_str());
}

TEST(GraphPack, DropResidentKeepsTheBytesReadable) {
  Rng rng(5);
  const EdgeList el = gnm(5000, 60000, rng);
  const std::string path = tmp_path("resident.rgp");
  GraphPack::write(el, path);
  const MappedGraph mapped(path);
  const EdgeSpan view = mapped.edges();
  const Edge first = view[0];
  const Edge last = view[view.num_edges() - 1];
  // Dropping the whole range (and a sub-range, and an empty range) must not
  // change what later reads observe — pages re-fault from the page cache.
  mapped.drop_resident(0, mapped.num_edges());
  mapped.drop_resident(10, 20);
  mapped.drop_resident(30, 30);
  EXPECT_EQ(view[0], first);
  EXPECT_EQ(view[view.num_edges() - 1], last);
  for (std::size_t i = 0; i < view.num_edges(); ++i) {
    ASSERT_EQ(view[i], el[i]);
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------- differential: seam
//
// Every driver below runs twice from one seed: once from the in-memory
// EdgeList, once from the MappedGraph over its pack. Solutions, word-exact
// ledgers, and the caller's RNG position must be identical — the EdgeSource
// seam may not perturb a single draw.

class PackDifferential : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng gen(kSeed);
    graph_ = gnp(300, 5.0 / 300, gen);
    path_ = tmp_path("differential.rgp");
    GraphPack::write(graph_, path_);
    mapped_.emplace(path_);
  }
  void TearDown() override {
    mapped_.reset();
    std::remove(path_.c_str());
  }

  /// Runs `driver(source, rng)` from the heap list and from the pack and
  /// applies `check(heap_result, pack_result)`; RNG positions are compared
  /// here so every driver gets the check for free.
  template <typename Driver, typename Check>
  void expect_identical(const Driver& driver, const Check& check) {
    Rng heap_rng(kSeed);
    const auto heap = driver(EdgeSource(graph_), heap_rng);
    Rng pack_rng(kSeed);
    const auto pack = driver(EdgeSource(*mapped_), pack_rng);
    check(heap, pack);
    EXPECT_EQ(heap_rng.next_u64(), pack_rng.next_u64())
        << "pack path consumed a different RNG stream";
  }

  static constexpr std::uint64_t kSeed = 41;
  EdgeList graph_;
  std::string path_;
  std::optional<MappedGraph> mapped_;
};

TEST_F(PackDifferential, MatchingProtocol) {
  const MaximumMatchingCoreset coreset;
  expect_identical(
      [&](EdgeSource src, Rng& rng) {
        return run_matching_protocol(src, 6, coreset, ComposeSolver::kMaximum,
                                     0, rng);
      },
      [](const MatchingProtocolResult& heap,
         const MatchingProtocolResult& pack) {
        EXPECT_EQ(sorted_edges(heap.solution), sorted_edges(pack.solution));
        EXPECT_EQ(heap.comm.total_words(), pack.comm.total_words());
        ASSERT_EQ(heap.summaries.size(), pack.summaries.size());
        for (std::size_t i = 0; i < heap.summaries.size(); ++i) {
          EXPECT_EQ(heap.summaries[i].edges(), pack.summaries[i].edges());
        }
      });
}

TEST_F(PackDifferential, MatchingProtocolOverSocketTransport) {
  // The pack feeds the forked-worker loopback transport: workers inherit
  // the mapping copy-on-write and build their summaries off it directly.
  const MaximumMatchingCoreset coreset;
  StreamingOptions socket;
  socket.transport = EngineTransport::kSocket;
  expect_identical(
      [&](EdgeSource src, Rng& rng) {
        return run_matching_protocol_streaming(src, 5, coreset,
                                               ComposeSolver::kMaximum, 0, rng,
                                               /*pool=*/nullptr, socket);
      },
      [](const MatchingProtocolResult& heap,
         const MatchingProtocolResult& pack) {
        EXPECT_EQ(sorted_edges(heap.solution), sorted_edges(pack.solution));
        EXPECT_EQ(heap.comm.total_words(), pack.comm.total_words());
        EXPECT_EQ(pack.transport.frames, 5u);
      });
}

TEST_F(PackDifferential, MatchingProtocolOverShmTransport) {
  // Same differential through the shared-memory rings: the forked workers
  // inherit the mapping copy-on-write and the frames flow through the shm
  // segment instead of loopback.
  const MaximumMatchingCoreset coreset;
  StreamingOptions shm;
  shm.transport = EngineTransport::kShm;
  expect_identical(
      [&](EdgeSource src, Rng& rng) {
        return run_matching_protocol_streaming(src, 5, coreset,
                                               ComposeSolver::kMaximum, 0, rng,
                                               /*pool=*/nullptr, shm);
      },
      [](const MatchingProtocolResult& heap,
         const MatchingProtocolResult& pack) {
        EXPECT_EQ(sorted_edges(heap.solution), sorted_edges(pack.solution));
        EXPECT_EQ(heap.comm.total_words(), pack.comm.total_words());
        EXPECT_EQ(pack.transport.frames, 5u);
      });
}

TEST_F(PackDifferential, VcProtocol) {
  const PeelingVcCoreset coreset;
  expect_identical(
      [&](EdgeSource src, Rng& rng) {
        return run_vc_protocol(src, 6, coreset, rng);
      },
      [](const VcProtocolResult& heap, const VcProtocolResult& pack) {
        EXPECT_EQ(heap.solution.vertices(), pack.solution.vertices());
        EXPECT_EQ(heap.comm.total_words(), pack.comm.total_words());
      });
}

TEST_F(PackDifferential, GroupedVcProtocol) {
  expect_identical(
      [&](EdgeSource src, Rng& rng) {
        return grouped_vc_protocol(src, 5, /*alpha=*/26.0, rng);
      },
      [](const GroupedVcProtocolResult& heap,
         const GroupedVcProtocolResult& pack) {
        EXPECT_EQ(heap.solution.vertices(), pack.solution.vertices());
        EXPECT_EQ(heap.comm.total_words(), pack.comm.total_words());
      });
}

TEST_F(PackDifferential, WeightedVcProtocol) {
  Rng wgen(17);
  VertexWeights weights(graph_.num_vertices());
  for (double& x : weights) x = wgen.uniform_real(1.0, 64.0);
  expect_identical(
      [&](EdgeSource src, Rng& rng) {
        return weighted_vc_protocol(src, weights, 5, rng);
      },
      [](const WeightedVcProtocolResult& heap,
         const WeightedVcProtocolResult& pack) {
        EXPECT_EQ(heap.solution.vertices(), pack.solution.vertices());
        EXPECT_EQ(heap.cover_cost, pack.cover_cost);
        EXPECT_EQ(heap.comm.total_words(), pack.comm.total_words());
      });
}

TEST_F(PackDifferential, CoresetMpcMatchingRounds) {
  MpcEngineConfig config;
  config.mpc = MpcConfig::paper_default(graph_.num_vertices());
  config.max_rounds = 3;
  expect_identical(
      [&](EdgeSource src, Rng& rng) {
        return coreset_mpc_matching_rounds(src, config, 0, rng);
      },
      [](const CoresetMpcMatchingResult& heap,
         const CoresetMpcMatchingResult& pack) {
        EXPECT_EQ(sorted_edges(heap.matching), sorted_edges(pack.matching));
        EXPECT_EQ(heap.stats.total_comm_words, pack.stats.total_comm_words);
        EXPECT_EQ(heap.stats.engine_rounds, pack.stats.engine_rounds);
      });
}

TEST_F(PackDifferential, CoresetMpcVcRounds) {
  MpcEngineConfig config;
  config.mpc = MpcConfig::paper_default(graph_.num_vertices());
  config.max_rounds = 3;
  expect_identical(
      [&](EdgeSource src, Rng& rng) {
        return coreset_mpc_vertex_cover_rounds(src, config, rng);
      },
      [](const CoresetMpcVcResult& heap, const CoresetMpcVcResult& pack) {
        EXPECT_EQ(heap.cover.vertices(), pack.cover.vertices());
        EXPECT_EQ(heap.stats.total_comm_words, pack.stats.total_comm_words);
      });
}

TEST_F(PackDifferential, FilteringMpcRounds) {
  MpcEngineConfig config;
  config.mpc = MpcConfig::paper_default(graph_.num_vertices());
  config.max_rounds = 12;
  expect_identical(
      [&](EdgeSource src, Rng& rng) {
        return filtering_mpc_rounds(src, config, rng);
      },
      [](const FilteringMpcResult& heap, const FilteringMpcResult& pack) {
        EXPECT_EQ(sorted_edges(heap.maximal_matching),
                  sorted_edges(pack.maximal_matching));
        EXPECT_EQ(heap.filter_iterations, pack.filter_iterations);
        EXPECT_EQ(heap.stats.total_comm_words, pack.stats.total_comm_words);
      });
}

TEST_F(PackDifferential, AugmentingRounds) {
  MpcEngineConfig config;
  config.mpc = MpcConfig::paper_default(graph_.num_vertices());
  config.max_rounds = 10;
  const AugmentingRoundsConfig aug = AugmentingRoundsConfig::for_epsilon(0.34);
  expect_identical(
      [&](EdgeSource src, Rng& rng) {
        return run_matching_rounds_augmenting(src, config, aug, 0, rng);
      },
      [](const AugmentingMpcResult& heap, const AugmentingMpcResult& pack) {
        EXPECT_EQ(sorted_edges(heap.matching), sorted_edges(pack.matching));
        EXPECT_EQ(heap.total_augmentations, pack.total_augmentations);
        EXPECT_EQ(heap.certified, pack.certified);
      });
}

TEST_F(PackDifferential, EdcsRounds) {
  MpcEngineConfig config;
  config.mpc = MpcConfig::paper_default(graph_.num_vertices());
  config.max_rounds = 4;
  expect_identical(
      [&](EdgeSource src, Rng& rng) {
        return run_matching_rounds_edcs(src, config, EdcsRoundsConfig{}, 0,
                                        rng);
      },
      [](const EdcsMpcResult& heap, const EdcsMpcResult& pack) {
        EXPECT_EQ(sorted_edges(heap.matching), sorted_edges(pack.matching));
        EXPECT_EQ(heap.cover.vertices(), pack.cover.vertices());
        EXPECT_EQ(heap.certified, pack.certified);
      });
}

TEST(GraphPackDifferential, WeightedMatchingProtocolFromPack) {
  // Separate fixture: the weighted driver reads a weighted pack.
  Rng gen(23);
  WeightedEdgeList w;
  w.num_vertices = 120;
  for (int i = 0; i < 700; ++i) {
    const auto u = static_cast<VertexId>(gen.next_below(119));
    w.add(u, static_cast<VertexId>(u + 1), gen.uniform_real(0.5, 16.0));
  }
  const std::string path = tmp_path("weighted_differential.rgp");
  GraphPack::write(w, path);
  const MappedGraph mapped(path);

  Rng heap_rng(23);
  const WeightedMatchingProtocolResult heap =
      weighted_matching_protocol(w, 5, 0, heap_rng);
  Rng pack_rng(23);
  const WeightedMatchingProtocolResult pack =
      weighted_matching_protocol(mapped, 5, 0, pack_rng);
  EXPECT_EQ(sorted_edges(heap.solution), sorted_edges(pack.solution));
  EXPECT_EQ(heap.matching_weight, pack.matching_weight);
  EXPECT_EQ(heap.comm.total_words(), pack.comm.total_words());
  EXPECT_EQ(heap.max_classes_per_machine, pack.max_classes_per_machine);
  EXPECT_EQ(heap_rng.next_u64(), pack_rng.next_u64());
  std::remove(path.c_str());
}

// -------------------------------------------------------- adversarial packs
//
// Malformed packs abort with a "graph pack:" diagnostic naming the defect
// (the summary_wire_test frame-suite pattern). Every mutation below starts
// from a freshly written VALID pack, so each test isolates one defect.

class GraphPackDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    path_ = tmp_path("corrupt.rgp");
    bytes_ = valid_pack_bytes(path_);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void rewrite() { write_file(path_, bytes_); }

  std::string path_;
  std::vector<std::uint8_t> bytes_;
};

TEST_F(GraphPackDeathTest, MissingFile) {
  EXPECT_DEATH((void)MappedGraph(tmp_path("nonexistent.rgp")),
               "graph pack: .*cannot open");
}

TEST_F(GraphPackDeathTest, BadMagic) {
  bytes_[0] ^= 0xff;
  rewrite();
  EXPECT_DEATH((void)MappedGraph(path_), "graph pack: .*bad magic");
}

TEST_F(GraphPackDeathTest, VersionSkew) {
  bytes_[4] = 9;
  rewrite();
  EXPECT_DEATH((void)MappedGraph(path_),
               "graph pack: .*version 9, this build reads version 1");
}

TEST_F(GraphPackDeathTest, UnknownFlagBits) {
  bytes_[6] |= 0x04;
  rewrite();
  EXPECT_DEATH((void)MappedGraph(path_),
               "graph pack: .*unknown flag bits 0x0004");
}

TEST_F(GraphPackDeathTest, ReservedWordSet) {
  bytes_[12] = 1;
  rewrite();
  EXPECT_DEATH((void)MappedGraph(path_), "graph pack: .*reserved header word");
}

TEST_F(GraphPackDeathTest, TruncatedHeader) {
  bytes_.resize(kPackHeaderBytes - 1);
  rewrite();
  EXPECT_DEATH((void)MappedGraph(path_), "graph pack: .*truncated header");
}

TEST_F(GraphPackDeathTest, TruncatedEdgeSection) {
  bytes_.resize(bytes_.size() - 3);  // tears the last record
  rewrite();
  EXPECT_DEATH((void)MappedGraph(path_), "graph pack: .*header claims 3");
}

TEST_F(GraphPackDeathTest, LyingEdgeCount) {
  std::uint64_t m = 1000;  // file holds 3 records
  std::memcpy(bytes_.data() + 16, &m, sizeof m);
  rewrite();
  EXPECT_DEATH((void)MappedGraph(path_), "graph pack: .*header claims 1000");
}

TEST_F(GraphPackDeathTest, EndpointOutOfUniverse) {
  std::uint32_t v = 6;  // universe is [0, 6)
  std::memcpy(bytes_.data() + kPackHeaderBytes + 4, &v, sizeof v);
  rewrite();
  EXPECT_DEATH((void)MappedGraph(path_), "graph pack: .*out of universe");
}

TEST_F(GraphPackDeathTest, SelfLoop) {
  std::uint32_t v = 0;  // first record becomes (0, 0)
  std::memcpy(bytes_.data() + kPackHeaderBytes + 4, &v, sizeof v);
  rewrite();
  EXPECT_DEATH((void)MappedGraph(path_),
               "graph pack: .*record 0 is a self-loop at vertex 0");
}

TEST_F(GraphPackDeathTest, UnnormalizedUnweightedRecord) {
  std::uint32_t u = 5, v = 2;  // second record becomes (5, 2)
  std::memcpy(bytes_.data() + kPackHeaderBytes + 8, &u, sizeof u);
  std::memcpy(bytes_.data() + kPackHeaderBytes + 12, &v, sizeof v);
  rewrite();
  EXPECT_DEATH((void)MappedGraph(path_), "graph pack: .*is not normalized");
}

TEST_F(GraphPackDeathTest, NaNWeight) {
  WeightedEdgeList w;
  w.num_vertices = 4;
  w.add(1, 0, 2.5);
  GraphPack::write(w, path_);
  bytes_ = read_file(path_);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(bytes_.data() + kPackHeaderBytes + 8, &nan, sizeof nan);
  rewrite();
  EXPECT_DEATH((void)MappedGraph(path_),
               "graph pack: .*record 0 weight is NaN");
}

TEST_F(GraphPackDeathTest, NegativeWeight) {
  WeightedEdgeList w;
  w.num_vertices = 4;
  w.add(1, 0, 2.5);
  GraphPack::write(w, path_);
  bytes_ = read_file(path_);
  const double neg = -1.5;
  std::memcpy(bytes_.data() + kPackHeaderBytes + 8, &neg, sizeof neg);
  rewrite();
  EXPECT_DEATH((void)MappedGraph(path_), "graph pack: .*is negative");
}

}  // namespace
}  // namespace rcc
