#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rcc {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat rs;
  rs.add(5.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStat, KnownMeanAndVariance) {
  RunningStat rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(rs.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStat, NumericallyStableForLargeOffsets) {
  RunningStat rs;
  const double offset = 1e9;
  for (double x : {offset + 1, offset + 2, offset + 3}) rs.add(x);
  EXPECT_NEAR(rs.mean(), offset + 2, 1e-3);
  EXPECT_NEAR(rs.variance(), 1.0, 1e-6);
}

TEST(PercentileSorted, Interpolation) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0 / 3.0), 2.0);
}

TEST(PercentileSorted, SingleElement) {
  std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 42.0);
}

TEST(Summarize, EmptySample) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, OrderStatisticsOfUnsortedInput) {
  const Summary s = summarize({9.0, 1.0, 5.0, 3.0, 7.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.p25, 3.0);
  EXPECT_DOUBLE_EQ(s.p75, 7.0);
}

TEST(Summarize, StrRenders) {
  const Summary s = summarize({1.0, 2.0, 3.0});
  const std::string rendered = s.str(2);
  EXPECT_NE(rendered.find("2.00"), std::string::npos);
  EXPECT_NE(rendered.find("1.00"), std::string::npos);
  EXPECT_NE(rendered.find("3.00"), std::string::npos);
}

}  // namespace
}  // namespace rcc
