// Streaming combine path of the ProtocolEngine
// (distributed/protocol_engine.hpp):
//
//   * canonical-order streaming must be seed-for-seed IDENTICAL to the
//     barrier fold — exact solutions, word-exact communication, and the
//     coordinator RNG stream left in the same state — for every driver
//     (matching, VC, grouped VC, weighted matching, weighted VC), pool and
//     sequential, and for every completion-queue capacity,
//   * arrival-order streaming keeps the protocol invariants (validity /
//     feasibility) even though the absorb order follows thread completion,
//   * the overlap telemetry reports what the path exists to create: the
//     coordinator absorbing summaries while machines are still building.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "coreset/matching_coresets.hpp"
#include "coreset/vc_coreset.hpp"
#include "distributed/protocol.hpp"
#include "distributed/protocols.hpp"
#include "distributed/weighted_matching_protocol.hpp"
#include "distributed/weighted_vc_protocol.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "mpc/edcs_rounds.hpp"
#include "util/options.hpp"
#include "util/thread_pool.hpp"

namespace rcc {
namespace {

std::vector<Edge> sorted_edges(const Matching& m) {
  EdgeList el = m.to_edge_list();
  el.sort();
  return el.edges();
}

constexpr std::size_t kMachines = 5;

TEST(StreamingEngine, CanonicalMatchingMatchesBarrierSeedForSeed) {
  const MaximumMatchingCoreset coreset;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng gen(seed);
    const EdgeList el = gnp(400, 5.0 / 400, gen);
    for (const bool pooled : {false, true}) {
      ThreadPool pool(4);
      ThreadPool* p = pooled ? &pool : nullptr;

      Rng barrier_rng(seed);
      const MatchingProtocolResult barrier = run_matching_protocol(
          el, kMachines, coreset, ComposeSolver::kMaximum, 0, barrier_rng, p);
      Rng stream_rng(seed);
      const MatchingProtocolResult streamed = run_matching_protocol_streaming(
          el, kMachines, coreset, ComposeSolver::kMaximum, 0, stream_rng, p);

      EXPECT_EQ(sorted_edges(barrier.solution), sorted_edges(streamed.solution))
          << "seed=" << seed << " pooled=" << pooled;
      EXPECT_EQ(barrier.comm.total_words(), streamed.comm.total_words());
      ASSERT_EQ(barrier.summaries.size(), streamed.summaries.size());
      for (std::size_t i = 0; i < kMachines; ++i) {
        EXPECT_EQ(barrier.summaries[i].num_edges(),
                  streamed.summaries[i].num_edges());
      }
      // Both paths must leave the caller's RNG at the same stream position:
      // k forks + the same coordinator draws.
      EXPECT_EQ(barrier_rng.next_u64(), stream_rng.next_u64());
    }
  }
}

TEST(StreamingEngine, CanonicalVcMatchesBarrierSeedForSeed) {
  const PeelingVcCoreset coreset;
  for (std::uint64_t seed : {4u, 5u}) {
    Rng gen(seed);
    const EdgeList el = gnp(300, 6.0 / 300, gen);
    for (const bool pooled : {false, true}) {
      ThreadPool pool(4);
      ThreadPool* p = pooled ? &pool : nullptr;

      Rng barrier_rng(seed);
      const VcProtocolResult barrier =
          run_vc_protocol(el, kMachines, coreset, barrier_rng, p);
      Rng stream_rng(seed);
      const VcProtocolResult streamed =
          run_vc_protocol_streaming(el, kMachines, coreset, stream_rng, p);

      EXPECT_EQ(barrier.solution.vertices(), streamed.solution.vertices())
          << "seed=" << seed << " pooled=" << pooled;
      EXPECT_EQ(barrier.comm.total_words(), streamed.comm.total_words());
      EXPECT_EQ(barrier_rng.next_u64(), stream_rng.next_u64());
    }
  }
}

TEST(StreamingEngine, CanonicalGroupedVcMatchesBarrierSeedForSeed) {
  for (std::uint64_t seed : {6u, 7u}) {
    Rng gen(seed);
    const EdgeList el = gnp(256, 0.04, gen);
    ThreadPool pool(3);
    Rng barrier_rng(seed);
    const GroupedVcProtocolResult barrier =
        grouped_vc_protocol(el, kMachines, /*alpha=*/8.0, barrier_rng, &pool);
    Rng stream_rng(seed);
    const GroupedVcProtocolResult streamed = grouped_vc_protocol_streaming(
        el, kMachines, /*alpha=*/8.0, stream_rng, &pool);
    EXPECT_EQ(barrier.solution.vertices(), streamed.solution.vertices());
    EXPECT_EQ(barrier.comm.total_words(), streamed.comm.total_words());
    EXPECT_EQ(barrier_rng.next_u64(), stream_rng.next_u64());
  }
}

TEST(StreamingEngine, CanonicalWeightedDriversMatchBarrierSeedForSeed) {
  for (std::uint64_t seed : {8u, 9u}) {
    Rng gen(seed);
    WeightedEdgeList w;
    w.num_vertices = 120;
    for (int i = 0; i < 900; ++i) {
      const auto u = static_cast<VertexId>(gen.next_below(119));
      w.add(u, static_cast<VertexId>(u + 1), gen.uniform_real(0.5, 16.0));
    }
    ThreadPool pool(4);

    Rng barrier_rng(seed);
    const WeightedMatchingProtocolResult barrier =
        weighted_matching_protocol(w, kMachines, 0, barrier_rng, &pool);
    Rng stream_rng(seed);
    const WeightedMatchingProtocolResult streamed =
        weighted_matching_protocol_streaming(w, kMachines, 0, stream_rng,
                                             &pool);
    EXPECT_EQ(sorted_edges(barrier.solution), sorted_edges(streamed.solution));
    EXPECT_DOUBLE_EQ(barrier.matching_weight, streamed.matching_weight);
    EXPECT_EQ(barrier.comm.total_words(), streamed.comm.total_words());
    EXPECT_EQ(barrier.max_classes_per_machine,
              streamed.max_classes_per_machine);
    EXPECT_EQ(barrier_rng.next_u64(), stream_rng.next_u64());

    const EdgeList el = gnp(200, 0.05, gen);
    VertexWeights weights(el.num_vertices());
    for (double& x : weights) x = gen.uniform_real(1.0, 64.0);
    Rng vc_barrier_rng(seed);
    const WeightedVcProtocolResult vc_barrier =
        weighted_vc_protocol(el, weights, kMachines, vc_barrier_rng, &pool);
    Rng vc_stream_rng(seed);
    const WeightedVcProtocolResult vc_streamed = weighted_vc_protocol_streaming(
        el, weights, kMachines, vc_stream_rng, &pool);
    EXPECT_EQ(vc_barrier.solution.vertices(), vc_streamed.solution.vertices());
    EXPECT_DOUBLE_EQ(vc_barrier.cover_cost, vc_streamed.cover_cost);
    EXPECT_EQ(vc_barrier.weight_classes, vc_streamed.weight_classes);
    EXPECT_EQ(vc_barrier_rng.next_u64(), vc_stream_rng.next_u64());
  }
}

TEST(StreamingEngine, CanonicalEdcsCombinerMatchesBarrierSeedForSeed) {
  // The EDCS round-combiner through the multi-round executor: canonical
  // streaming must replay the barrier fold word for word — matched edges,
  // ledger communication, round count, and memory peaks — pooled and not,
  // in both the one-round default regime and the degenerate beta = 2 regime
  // whose survivors force a second engine round.
  struct Regime {
    EdgeList edges;
    EdcsRoundsConfig edcs;
  };
  std::vector<Regime> regimes;
  {
    Rng gen(21);
    regimes.push_back({gnp(400, 5.0 / 400, gen), EdcsRoundsConfig{}});
    EdcsRoundsConfig thin;
    thin.edcs.beta = 2;
    thin.edcs.lambda = 1;
    regimes.push_back({crown_forest(12, 3), thin});
  }
  for (const Regime& regime : regimes) {
    for (std::uint64_t seed : {7u, 22u}) {
      for (const bool pooled : {false, true}) {
        ThreadPool pool(4);
        ThreadPool* p = pooled ? &pool : nullptr;
        MpcEngineConfig barrier_config;
        barrier_config.mpc.num_machines = 4;
        barrier_config.mpc.memory_words = std::uint64_t{1} << 40;
        barrier_config.max_rounds = 32;
        MpcEngineConfig stream_config = barrier_config;
        stream_config.streaming_fold = true;

        Rng barrier_rng(seed);
        const EdcsMpcResult barrier = run_matching_rounds_edcs(
            regime.edges, barrier_config, regime.edcs, 0, barrier_rng, p);
        Rng stream_rng(seed);
        const EdcsMpcResult streamed = run_matching_rounds_edcs(
            regime.edges, stream_config, regime.edcs, 0, stream_rng, p);

        EXPECT_EQ(sorted_edges(barrier.matching),
                  sorted_edges(streamed.matching))
            << "seed=" << seed << " pooled=" << pooled
            << " beta=" << regime.edcs.edcs.beta;
        EXPECT_EQ(barrier.cover.vertices(), streamed.cover.vertices());
        EXPECT_EQ(barrier.stats.total_comm_words,
                  streamed.stats.total_comm_words);
        EXPECT_EQ(barrier.stats.engine_rounds, streamed.stats.engine_rounds);
        EXPECT_EQ(barrier.max_memory_words, streamed.max_memory_words);
        EXPECT_EQ(barrier.stats.round_peak_words,
                  streamed.stats.round_peak_words);
        EXPECT_EQ(barrier.certified, streamed.certified);
        // Same coordinator RNG stream position on exit.
        EXPECT_EQ(barrier_rng.next_u64(), stream_rng.next_u64());
      }
    }
  }
}

TEST(StreamingEngine, ArrivalOrderEdcsKeepsInvariantsAcrossThreadCounts) {
  // Arrival-order absorbs union the same summaries in a thread-dependent
  // order; the exact union solve makes the matching SIZE order-independent
  // even though the edge set may differ, and validity/certification must
  // hold regardless.
  for (std::uint64_t seed : {23u, 24u}) {
    Rng gen(seed);
    const EdgeList el = gnp(300, 5.0 / 300, gen);
    MpcEngineConfig canonical_config;
    canonical_config.mpc.num_machines = 4;
    canonical_config.mpc.memory_words = std::uint64_t{1} << 40;
    canonical_config.max_rounds = 32;
    EdcsRoundsConfig edcs;
    Rng canonical_rng(seed);
    const EdcsMpcResult canonical = run_matching_rounds_edcs(
        el, canonical_config, edcs, 0, canonical_rng);
    for (std::size_t threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      MpcEngineConfig config = canonical_config;
      config.streaming_fold = true;
      config.streaming.order = StreamingOrder::kArrival;
      Rng rng(seed);
      const EdcsMpcResult r =
          run_matching_rounds_edcs(el, config, edcs, 0, rng, &pool);
      EXPECT_TRUE(r.matching.valid()) << "threads=" << threads;
      EXPECT_TRUE(r.matching.subset_of(el)) << "threads=" << threads;
      EXPECT_EQ(r.matching.size(), canonical.matching.size())
          << "threads=" << threads;
      EXPECT_TRUE(r.certified) << "threads=" << threads;
      EXPECT_TRUE(r.matching.maximal_in(el)) << "threads=" << threads;
      EXPECT_EQ(r.stats.total_comm_words, canonical.stats.total_comm_words)
          << "threads=" << threads;
    }
  }
}

TEST(StreamingEngine, BoundedQueueCapacitiesPreserveCanonicalEquality) {
  // The completion queue's capacity only changes scheduling backpressure,
  // never the absorb order or the outcome.
  const MaximumMatchingCoreset coreset;
  Rng gen(10);
  const EdgeList el = gnp(500, 0.02, gen);
  Rng reference_rng(10);
  const MatchingProtocolResult reference = run_matching_protocol(
      el, kMachines, coreset, ComposeSolver::kMaximum, 0, reference_rng);
  for (const std::size_t capacity : {1u, 2u, 4u, 0u /* = k */}) {
    ThreadPool pool(4);
    StreamingOptions opts;
    opts.queue_capacity = capacity;
    Rng rng(10);
    const MatchingProtocolResult streamed = run_matching_protocol_streaming(
        el, kMachines, coreset, ComposeSolver::kMaximum, 0, rng, &pool, opts);
    EXPECT_EQ(sorted_edges(reference.solution), sorted_edges(streamed.solution))
        << "capacity=" << capacity;
    EXPECT_EQ(reference.comm.total_words(), streamed.comm.total_words());
  }
}

TEST(StreamingEngine, ArrivalOrderKeepsInvariantsAcrossThreadCounts) {
  StreamingOptions arrival;
  arrival.order = StreamingOrder::kArrival;
  const MaximumMatchingCoreset matching_coreset;
  const PeelingVcCoreset vc_coreset;
  for (std::uint64_t seed : {11u, 12u}) {
    Rng gen(seed);
    const EdgeList el = gnp(300, 5.0 / 300, gen);
    for (std::size_t threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      Rng m_rng(seed);
      const MatchingProtocolResult m = run_matching_protocol_streaming(
          el, kMachines, matching_coreset, ComposeSolver::kMaximum, 0, m_rng,
          &pool, arrival);
      EXPECT_TRUE(m.solution.valid());
      EXPECT_TRUE(m.solution.subset_of(el));
      EXPECT_TRUE(
          m.solution.maximal_in(EdgeList::union_of(m.summaries)))
          << "threads=" << threads;

      Rng c_rng(seed);
      const VcProtocolResult c = run_vc_protocol_streaming(
          el, kMachines, vc_coreset, c_rng, &pool, arrival);
      EXPECT_TRUE(c.solution.covers(el)) << "threads=" << threads;
    }
  }
}

TEST(StreamingEngine, SequentialRunReportsFullPipeliningTelemetry) {
  // Without a pool, build and absorb alternate machine by machine: every
  // absorb but the last lands before the machine phase finished (the
  // field's definition — interleaving, which a pool turns into wall-clock
  // overlap).
  const MaximumMatchingCoreset coreset;
  Rng gen(13);
  const EdgeList el = gnp(200, 0.05, gen);
  {
    Rng rng(13);
    EdgeList union_edges(el.num_vertices());
    struct Probe {
      EdgeList& u;
      void absorb(EdgeList& s, std::size_t) { u.append(s); }
      Matching finish(std::vector<EdgeList>&, Rng& r) {
        return greedy_maximal_matching(u, GreedyOrder::kRandom, r);
      }
    } probe{union_edges};
    const auto build = [&](EdgeSpan piece, const PartitionContext& ctx,
                           Rng& machine_rng) {
      return coreset.build(piece, ctx, machine_rng);
    };
    const auto account = [](const EdgeList& s) {
      return MessageSize{s.num_edges(), 0};
    };
    auto result = run_protocol_streaming<Edge>(
        std::span<const Edge>(el.edges().data(), el.num_edges()),
        el.num_vertices(), kMachines, 0, rng, nullptr, build, account, probe);
    EXPECT_TRUE(result.streaming.streamed);
    EXPECT_EQ(result.streaming.absorbed_while_machines_ran, kMachines - 1);
    EXPECT_TRUE(result.solution.valid());
  }
}

TEST(StreamingEngine, BarrierWrapperReportsNoStreaming) {
  const MaximumMatchingCoreset coreset;
  Rng gen(14);
  const EdgeList el = gnp(100, 0.05, gen);
  Rng rng(14);
  const auto build = [&](EdgeSpan piece, const PartitionContext& ctx,
                         Rng& machine_rng) {
    return coreset.build(piece, ctx, machine_rng);
  };
  const auto account = [](const EdgeList& s) {
    return MessageSize{s.num_edges(), 0};
  };
  const auto combine = [&](std::vector<EdgeList>& summaries, Rng& r) {
    return compose_matching_coresets(summaries, ComposeSolver::kGreedy, 0, r);
  };
  auto result = run_protocol<Edge>(
      std::span<const Edge>(el.edges().data(), el.num_edges()),
      el.num_vertices(), kMachines, 0, rng, nullptr, build, account, combine);
  EXPECT_FALSE(result.streaming.streamed);
  EXPECT_EQ(result.streaming.absorbed_while_machines_ran, 0u);
}

TEST(StreamingEngine, FlagsRoundTripIntoStreamingOptions) {
  Options options("streaming_engine_test");
  add_streaming_flags(options);
  add_streaming_flags(options);  // idempotent: double registration is a no-op
  const char* argv[] = {"test", "--engine-streaming=true",
                        "--engine-streaming-order=arrival",
                        "--engine-queue-capacity=3"};
  options.parse(4, const_cast<char**>(argv));
  EXPECT_TRUE(streaming_enabled_from_options(options));
  const StreamingOptions opts = streaming_options_from_options(options);
  EXPECT_EQ(opts.order, StreamingOrder::kArrival);
  EXPECT_EQ(opts.queue_capacity, 3u);
  EXPECT_EQ(opts.transport, EngineTransport::kInproc);  // the default
}

TEST(StreamingEngine, ShmTransportFlagsRoundTripIntoStreamingOptions) {
  Options options("streaming_engine_test");
  add_streaming_flags(options);
  const char* argv[] = {"test", "--engine-transport=shm",
                        "--engine-transport-timeout-ms=2500",
                        "--engine-shm-ring-bytes=65536"};
  options.parse(4, const_cast<char**>(argv));
  const StreamingOptions opts = streaming_options_from_options(options);
  EXPECT_EQ(opts.transport, EngineTransport::kShm);
  // One deadline flag feeds both cross-process transports.
  EXPECT_EQ(opts.shm.timeout_ms, 2500);
  EXPECT_EQ(opts.socket.timeout_ms, 2500);
  EXPECT_EQ(opts.shm.ring_bytes, 65536u);
}

TEST(StreamingEngineDeath, UnknownOrderValueExitsStrictly) {
  Options options("streaming_engine_test");
  add_streaming_flags(options);
  const char* argv[] = {"test", "--engine-streaming-order=sorted"};
  options.parse(2, const_cast<char**>(argv));
  EXPECT_EXIT(streaming_options_from_options(options),
              ::testing::ExitedWithCode(2), "not one of");
}

TEST(StreamingEngineDeath, UnknownTransportValueExitsStrictly) {
  Options options("streaming_engine_test");
  add_streaming_flags(options);
  const char* argv[] = {"test", "--engine-transport=pipe"};
  options.parse(2, const_cast<char**>(argv));
  EXPECT_EXIT(streaming_options_from_options(options),
              ::testing::ExitedWithCode(2),
              "flag --engine-transport: 'pipe' is not one of 'inproc', "
              "'socket', 'shm'");
}

TEST(StreamingEngineDeath, UndersizedShmRingExitsStrictly) {
  Options options("streaming_engine_test");
  add_streaming_flags(options);
  const char* argv[] = {"test", "--engine-shm-ring-bytes=32"};
  options.parse(2, const_cast<char**>(argv));
  EXPECT_EXIT(streaming_options_from_options(options),
              ::testing::ExitedWithCode(2),
              "flag --engine-shm-ring-bytes: 32 must be in \\[64, 2\\^30\\]");
}

}  // namespace
}  // namespace rcc
