// Heap-allocation regression tests for the round-persistent workspace paths.
//
// This binary replaces the global allocation functions with counting
// wrappers, warms a workspace by running each scratch-aware kernel once, and
// then asserts the SECOND invocation performs zero heap allocations. This is
// the strongest form of the allocation-discipline contract: not "few", not
// "tracked by the workspace counters" — none, measured at operator new.
//
// Scope note: the counters are process-global, so every measured window must
// avoid gtest assertions (they allocate on failure paths); windows compute
// into plain variables and the EXPECTs run after the window closes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "graph/edge_list.hpp"
#include "graph/edge_source.hpp"
#include "graph/generators.hpp"
#include "graph/graph_pack.hpp"
#include "graph/incremental_csr.hpp"
#include "matching/augmenting_paths.hpp"
#include "matching/greedy.hpp"
#include "matching/matching.hpp"
#include "matching/max_matching.hpp"
#include "coreset/kernel.hpp"
#include "mpc/mpc_engine.hpp"
#include "partition/sharded_partition.hpp"
#include "util/workspace.hpp"

namespace {
std::atomic<std::size_t> g_allocations{0};
std::atomic<std::size_t> g_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               ((size + static_cast<std::size_t>(align) - 1) /
                                static_cast<std::size_t>(align)) *
                                   static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace rcc {
namespace {

std::size_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

std::size_t allocated_bytes() {
  return g_bytes.load(std::memory_order_relaxed);
}

TEST(AllocationFree, GreedyMatchingIntoOnWarmScratch) {
  Rng gen(11);
  const EdgeList graph = gnp(500, 8.0 / 500, gen);
  MachineScratch scratch;
  Matching out;
  Rng rng(3);
  greedy_maximal_matching_into(out, graph, GreedyOrder::kRandom, rng, &scratch);
  const std::size_t warm_size = out.size();

  Rng rng2(3);
  const std::size_t before = allocations();
  greedy_maximal_matching_into(out, graph, GreedyOrder::kRandom, rng2,
                               &scratch);
  const std::size_t after = allocations();
  EXPECT_EQ(after, before) << "warm greedy_maximal_matching_into allocated";
  EXPECT_EQ(out.size(), warm_size);
}

TEST(AllocationFree, GreedyByKeyIntoOnWarmScratch) {
  Rng gen(12);
  const EdgeList graph = gnp(400, 8.0 / 400, gen);
  MachineScratch scratch;
  Matching out;
  const auto key = [](const Edge& e) { return static_cast<double>(e.v); };
  greedy_maximal_matching_by_into(out, graph, key, &scratch);

  const std::size_t before = allocations();
  greedy_maximal_matching_by_into(out, graph, key, &scratch);
  const std::size_t after = allocations();
  EXPECT_EQ(after, before) << "warm greedy_maximal_matching_by_into allocated";
}

TEST(AllocationFree, VertexCapKernelIntoOnWarmScratch) {
  Rng gen(13);
  const EdgeList graph = gnp(400, 10.0 / 400, gen);
  MachineScratch scratch;
  EdgeList out;
  vertex_cap_kernel_into(out, graph, 2, &scratch);
  const std::size_t warm_edges = out.num_edges();

  const std::size_t before = allocations();
  vertex_cap_kernel_into(out, graph, 2, &scratch);
  const std::size_t after = allocations();
  EXPECT_EQ(after, before) << "warm vertex_cap_kernel_into allocated";
  EXPECT_EQ(out.num_edges(), warm_edges);
}

TEST(AllocationFree, AugmentingEmptinessTestOnWarmScratch) {
  // With a maximum matching there is nothing to find: the search must run
  // its full exhaustive sweep without allocating (adjacency, marks, and DFS
  // stack all live in the scratch).
  Rng gen(14);
  const EdgeList graph = gnp(300, 6.0 / 300, gen);
  const Matching maximum = maximum_matching(graph);
  MachineScratch scratch;
  (void)find_augmenting_paths(graph, maximum, 9, &scratch);

  const std::size_t before = allocations();
  const bool any = has_augmenting_path(graph, maximum, 9, &scratch);
  const std::size_t after = allocations();
  EXPECT_FALSE(any);
  EXPECT_EQ(after, before) << "warm augmenting-path emptiness test allocated";
}

TEST(AllocationFree, IncrementalCsrWarmRoundsAreAllocationFree) {
  // Every transition of the CSR state machine on warm buffers — signature
  // reuse, counting-sort rebuild of a not-larger graph, and in-place
  // compaction — must be allocation-free. This is the warm-round budget the
  // broadcast-and-filter protocol relies on: after round 0 sizes the
  // buffers, the survivor graphs only shrink.
  Rng gen(16);
  const EdgeList graph = gnp(400, 8.0 / 400, gen);
  EdgeList filtered(graph.num_vertices());
  const auto keep = [](VertexId v) { return v % 3 != 0; };
  filtered.assign_filtered(
      graph, [&](const Edge& e) { return keep(e.u) && keep(e.v); });

  IncrementalCsr csr;
  csr.build(graph);  // warm: buffers sized for the full graph

  std::size_t reuse_allocs, rebuild_allocs, compact_allocs;
  {
    const std::size_t before = allocations();
    (void)csr.ensure(graph);  // same multiset: reuse
    reuse_allocs = allocations() - before;
  }
  {
    const std::size_t before = allocations();
    csr.compact(keep);  // in-place: writes through existing arrays
    compact_allocs = allocations() - before;
  }
  {
    const std::size_t before = allocations();
    (void)csr.ensure(graph);  // full rebuild into warm (full-size) buffers
    rebuild_allocs = allocations() - before;
  }
  EXPECT_EQ(reuse_allocs, 0u) << "CSR signature reuse allocated";
  EXPECT_EQ(compact_allocs, 0u) << "CSR in-place compaction allocated";
  EXPECT_EQ(rebuild_allocs, 0u) << "warm CSR counting-sort rebuild allocated";
  EXPECT_EQ(csr.reuses(), 1u);
  EXPECT_EQ(csr.rebuilds(), 2u);
  EXPECT_EQ(csr.compactions(), 1u);

  // The same contract, end to end through the searcher: alternating the
  // full graph and the survivor graph through one warm scratch must stay
  // allocation-free on both the reuse and rebuild paths. (Both searches run
  // against maximum matchings, so no paths — and no result vectors — are
  // produced inside the measured window.)
  const Matching max_full = maximum_matching(graph);
  const Matching max_filtered = maximum_matching(filtered);
  MachineScratch scratch;
  (void)find_augmenting_paths(graph, max_full, 9, &scratch);
  (void)find_augmenting_paths(filtered, max_filtered, 9, &scratch);

  const std::size_t before = allocations();
  bool any = has_augmenting_path(graph, max_full, 9, &scratch);  // rebuild
  any |= has_augmenting_path(graph, max_full, 9, &scratch);      // reuse
  any |= has_augmenting_path(filtered, max_filtered, 9, &scratch);
  const std::size_t searcher_allocs = allocations() - before;
  EXPECT_FALSE(any);
  EXPECT_EQ(searcher_allocs, 0u) << "warm searcher CSR round allocated";
  EXPECT_GE(scratch.state<IncrementalCsr>().reuses(), 1u);
}

TEST(AllocationFree, MaximumMatchingIntoOnWarmScratch) {
  Rng gen(15);
  const EdgeList general = gnp(300, 6.0 / 300, gen);
  const EdgeList bipartite = random_bipartite(150, 150, 0.05, gen);
  MachineScratch scratch;
  Matching out;
  maximum_matching_into(out, general, 0, &scratch);
  {
    const std::size_t before = allocations();
    maximum_matching_into(out, general, 0, &scratch);
    const std::size_t after = allocations();
    EXPECT_EQ(after, before) << "warm blossom maximum_matching_into allocated";
  }
  maximum_matching_into(out, bipartite, 150, &scratch);
  {
    const std::size_t before = allocations();
    maximum_matching_into(out, bipartite, 150, &scratch);
    const std::size_t after = allocations();
    EXPECT_EQ(after, before) << "warm HK maximum_matching_into allocated";
  }
}

TEST(AllocationFree, RepartitionOnWarmScratchAndArena) {
  Rng gen(16);
  const EdgeList graph = gnp(600, 10.0 / 600, gen);
  ProtocolWorkspace ws;
  ShardedPartition<Edge> parts;
  Rng rng(5);
  parts.repartition(
      std::span<const Edge>(graph.edges().data(), graph.num_edges()),
      graph.num_vertices(), 8, rng, nullptr, &ws.partition());

  const std::size_t before = allocations();
  parts.repartition(
      std::span<const Edge>(graph.edges().data(), graph.num_edges()),
      graph.num_vertices(), 8, rng, nullptr, &ws.partition());
  const std::size_t after = allocations();
  EXPECT_EQ(after, before) << "warm repartition allocated";
  EXPECT_EQ(parts.num_edges(), graph.num_edges());
}

TEST(AllocationFree, WarmExecutorRoundsStayWithinSmallByteBudget) {
  // Executor-level guard for the "steady-state rounds allocate zero heap"
  // claim, measured at operator new in BYTES: a warm-workspace multi-round
  // run over a fold that recirculates all m edges must cost only small
  // per-round bookkeeping (O(k) vectors, ledger labels). If a fold or the
  // executor regressed to materializing the edge set each round, every
  // round would allocate >= m * sizeof(Edge) = 32 KiB here and the budget
  // (chosen ~10x above the measured bookkeeping, ~5x below one round of
  // materialization) would blow immediately.
  Rng gen(18);
  const EdgeList graph = gnm(1000, 4000, gen);
  const Matching maximum = maximum_matching(graph);  // => no paths found
  ProtocolWorkspace ws;
  MpcEngineConfig config;
  config.mpc.num_machines = 4;
  config.mpc.memory_words = std::uint64_t{1} << 40;
  config.max_rounds = 6;
  config.early_stop = false;
  const auto build = [&](EdgeSpan piece, const PartitionContext& ctx, Rng&) {
    return find_augmenting_paths(piece, maximum, 5, ctx.scratch);
  };
  const auto account = [](const std::vector<AugmentingPath>& paths) {
    return MessageSize{0, static_cast<std::uint64_t>(paths.size())};
  };
  struct RecirculatingFold {
    void absorb(std::vector<AugmentingPath>&, std::size_t,
                MpcRoundContext&) {}
    EdgeList finish(std::vector<std::vector<AugmentingPath>>&,
                    MpcRoundContext& ctx, Rng&) {
      ctx.note_progress(1);
      ctx.survivors_out().assign(ctx.active_edges());
      return std::move(ctx.survivors_out());
    }
  };

  // Warm-up run grows every buffer; the measured run reuses them all.
  {
    Rng rng(9);
    RecirculatingFold fold;
    (void)run_mpc_rounds(graph, config, 0, rng, nullptr, build, account, fold,
                         &ws);
  }
  Rng rng(9);
  RecirculatingFold fold;
  const std::size_t before = allocated_bytes();
  const MpcExecutionStats stats = run_mpc_rounds(graph, config, 0, rng,
                                                 nullptr, build, account, fold,
                                                 &ws);
  const std::size_t spent = allocated_bytes() - before;
  EXPECT_EQ(stats.engine_rounds, 6u);
  EXPECT_LT(spent, 16u * 1024u)
      << "warm 6-round executor run allocated " << spent
      << " bytes — a per-round edge-set materialization costs "
      << 6 * graph.num_edges() * sizeof(Edge);
}

TEST(AllocationFree, MappedGraphReadPathIsAllocationFree) {
  // The whole point of the mmap seam: once the pack is mapped, reading it —
  // EdgeSource construction, span views, a full sweep over every record,
  // and residency drops — must not touch the heap at all. The kernel pages
  // the bytes in; operator new never runs. (Construction itself allocates:
  // the path copy and the open; only the read path is pinned here.)
  Rng gen(19);
  const EdgeList graph = gnm(2000, 12000, gen);
  const std::string path = ::testing::TempDir() + "allocation_test_pack.rgp";
  GraphPack::write(graph, path);
  const MappedGraph mapped(path);

  const std::size_t before = allocations();
  const EdgeSource source(mapped);
  const EdgeSpan view = source.edges();
  std::uint64_t checksum = 0;
  for (const Edge& e : view) checksum += e.u ^ (std::uint64_t{e.v} << 20);
  mapped.drop_resident(0, mapped.num_edges());
  for (std::size_t i = 0; i < view.num_edges(); ++i) {
    checksum -= view[i].u ^ (std::uint64_t{view[i].v} << 20);
  }
  const std::size_t after = allocations();
  EXPECT_EQ(checksum, 0u);
  EXPECT_EQ(source.origin(), EdgeOrigin::kMapped);
  EXPECT_EQ(after, before) << "mapped read path allocated";

  // And the seam composes with the warm-workspace contract: repartitioning
  // straight off the mapping is as allocation-free as from the heap list.
  ProtocolWorkspace ws;
  ShardedPartition<Edge> parts;
  Rng rng(7);
  parts.repartition(std::span<const Edge>(view.data(), view.num_edges()),
                    mapped.num_vertices(), 8, rng, nullptr, &ws.partition());
  const std::size_t warm_before = allocations();
  parts.repartition(std::span<const Edge>(view.data(), view.num_edges()),
                    mapped.num_vertices(), 8, rng, nullptr, &ws.partition());
  const std::size_t warm_after = allocations();
  EXPECT_EQ(warm_after, warm_before) << "warm repartition from mmap allocated";
  EXPECT_EQ(parts.num_edges(), mapped.num_edges());
  std::remove(path.c_str());
}

TEST(AllocationFree, ValueTypeResetAndAssignKeepCapacity) {
  Rng gen(17);
  const EdgeList graph = gnp(200, 8.0 / 200, gen);
  Matching m(graph.num_vertices());
  EdgeList survivors;
  survivors.assign(graph);

  const std::size_t before = allocations();
  m.reset(graph.num_vertices());
  survivors.reset(graph.num_vertices());
  survivors.assign_filtered(graph,
                            [](const Edge& e) { return e.u % 2 == 0; });
  survivors.reset(graph.num_vertices());
  survivors.assign(graph);
  const std::size_t after = allocations();
  EXPECT_EQ(after, before) << "reset/assign on warm value types allocated";
}

}  // namespace
}  // namespace rcc
