// Differential / fuzz-style property tests: independent implementations and
// mathematical identities cross-checked over randomized instance sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "coreset/compose.hpp"
#include "coreset/matching_coresets.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "matching/blossom.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/max_matching.hpp"
#include "partition/partition.hpp"
#include "vertex_cover/approx.hpp"
#include "vertex_cover/exact.hpp"
#include "vertex_cover/konig.hpp"
#include "vertex_cover/peeling.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

struct FuzzParam {
  int seed;
  double density;  // expected average degree
};

class FuzzSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

// Koenig duality: on bipartite graphs, min VC = max matching, and every
// derived cover is feasible. Cross-checks HK, Koenig, and the 2-approx.
TEST_P(FuzzSweep, KonigDualityAndApproximationSandwich) {
  const auto [seed, avg_deg] = GetParam();
  Rng rng(seed);
  const VertexId side = 150;
  const EdgeList el = random_bipartite(side, side, avg_deg / side, rng);
  const Graph g = bipartite_graph(el, side);
  const std::size_t mm = hopcroft_karp(g).size();
  const VertexCover exact_cover = konig_min_vertex_cover(g);
  EXPECT_EQ(exact_cover.size(), mm);
  EXPECT_TRUE(exact_cover.covers(el));

  const VertexCover approx = vc_two_approximation(el, rng);
  EXPECT_TRUE(approx.covers(el));
  EXPECT_GE(approx.size(), exact_cover.size());
  EXPECT_LE(approx.size(), 2 * exact_cover.size());

  // Blossom agrees with HK on bipartite inputs.
  EXPECT_EQ(blossom_maximum_matching(Graph(el)).size(), mm);
}

// Gallai identity on general graphs: MM(G) + |max independent set| = n is
// hard to check, but VC(G) >= MM(G) and VC(G) <= 2 MM(G) always hold.
TEST_P(FuzzSweep, MatchingCoverSandwichOnGeneralGraphs) {
  const auto [seed, avg_deg] = GetParam();
  Rng rng(seed + 1000);
  const VertexId n = 40;
  const EdgeList el = gnp(n, avg_deg / n, rng);
  const std::size_t mm = maximum_matching_size(el);
  const std::size_t vc = exact_min_vertex_cover_size(el);
  EXPECT_GE(vc, mm);
  EXPECT_LE(vc, 2 * mm);
}

// Composition quality dominance chain: exact coordinator >= greedy
// coordinator >= half of exact.
TEST_P(FuzzSweep, ComposeSolverDominance) {
  const auto [seed, avg_deg] = GetParam();
  Rng rng(seed + 2000);
  const VertexId n = 600;
  const EdgeList el = gnp(n, avg_deg / n, rng);
  const std::size_t k = 4;
  const auto pieces = random_partition(el, k, rng);
  const MaximumMatchingCoreset coreset;
  std::vector<EdgeList> summaries;
  for (std::size_t i = 0; i < k; ++i) {
    PartitionContext ctx{n, k, i, 0};
    summaries.push_back(coreset.build(pieces[i], ctx, rng));
  }
  const std::size_t exact =
      compose_matching_coresets(summaries, ComposeSolver::kMaximum, 0, rng).size();
  const std::size_t greedy =
      compose_matching_coresets(summaries, ComposeSolver::kGreedy, 0, rng).size();
  EXPECT_LE(greedy, exact);
  EXPECT_GE(2 * greedy, exact);
  // And the union can never beat the true optimum.
  EXPECT_LE(exact, maximum_matching_size(el));
}

// Peeling feasibility and the degree invariant across densities.
TEST_P(FuzzSweep, PeelingInvariants) {
  const auto [seed, avg_deg] = GetParam();
  Rng rng(seed + 3000);
  const VertexId n = 800;
  const EdgeList el = gnp(n, avg_deg / n, rng);
  const VertexCover cover = parnas_ron_vertex_cover(el, rng);
  EXPECT_TRUE(cover.covers(el));
  const PeelingResult r = parnas_ron_peeling(el);
  // No peeled vertex appears in the residual's support.
  std::vector<bool> peeled(n, false);
  for (VertexId v : r.all_peeled()) peeled[v] = true;
  for (const Edge& e : r.residual) {
    EXPECT_FALSE(peeled[e.u]);
    EXPECT_FALSE(peeled[e.v]);
  }
}

// Partition invariants: every edge lands exactly once; union preserves
// multiset (checked via degree sums).
TEST_P(FuzzSweep, PartitionPreservesDegreeMultiset) {
  const auto [seed, avg_deg] = GetParam();
  Rng rng(seed + 4000);
  const VertexId n = 500;
  const EdgeList el = gnp(n, avg_deg / n, rng);
  const auto pieces = random_partition(el, 7, rng);
  const auto before = el.degrees();
  std::vector<VertexId> after(n, 0);
  for (const auto& piece : pieces) {
    const auto d = piece.degrees();
    for (VertexId v = 0; v < n; ++v) after[v] += d[v];
  }
  EXPECT_EQ(after, before);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FuzzSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(1.0, 3.0, 8.0)));

// Identity spot-check: subsampled coreset at alpha=1 equals the full one.
TEST(Differential, SubsampleAlphaOneIsIdentity) {
  Rng rng(7);
  const EdgeList el = gnp(400, 0.02, rng);
  const auto pieces = random_partition(el, 3, rng);
  const MaximumMatchingCoreset full;
  const SubsampledMatchingCoreset sub(1.0);
  PartitionContext ctx{400, 3, 0, 0};
  Rng ra(5), rb(5);
  EXPECT_EQ(full.build(pieces[0], ctx, ra).num_edges(),
            sub.build(pieces[0], ctx, rb).num_edges());
}

// Induced matching is invariant under edge order.
TEST(Differential, InducedMatchingOrderInvariant) {
  Rng rng(8);
  EdgeList el = gnp(300, 0.01, rng);
  const std::size_t size_given = induced_matching(el).num_edges();
  el.sort();
  EXPECT_EQ(induced_matching(el).num_edges(), size_given);
}

}  // namespace
}  // namespace rcc
