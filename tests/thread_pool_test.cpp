#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace rcc {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(pool, n, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, CountSmallerThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  parallel_for(pool, 3, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (int i = 0; i < 3; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, ComputesParallelSum) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  std::vector<std::uint64_t> values(n);
  parallel_for(pool, n, [&](std::size_t i) { values[i] = i; });
  const auto sum = std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ParallelFor, TransientPoolOverload) {
  std::vector<std::atomic<int>> visits(64);
  parallel_for(64, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(CompletionQueue, SingleThreadedFifo) {
  CompletionQueue queue(4);
  for (std::size_t i = 0; i < 4; ++i) queue.push(i);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(queue.pop(), i);
}

TEST(CompletionQueue, ZeroCapacityIsClampedToOne) {
  CompletionQueue queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  queue.push(7);
  EXPECT_EQ(queue.pop(), 7u);
}

TEST(CompletionQueue, DeliversEveryIdExactlyOnceUnderContention) {
  // Many producers racing into a queue smaller than the id count: the
  // bounded ring must lose nothing, duplicate nothing, and unblock every
  // producer (push backpressure) while a single consumer drains.
  constexpr std::size_t kIds = 512;
  CompletionQueue queue(3);
  ThreadPool pool(8);
  for (std::size_t i = 0; i < kIds; ++i) {
    pool.submit([&queue, i] { queue.push(i); });
  }
  std::vector<int> seen(kIds, 0);
  for (std::size_t i = 0; i < kIds; ++i) ++seen[queue.pop()];
  pool.wait_idle();
  for (std::size_t i = 0; i < kIds; ++i) EXPECT_EQ(seen[i], 1) << i;
}

TEST(CompletionQueue, PushHappensBeforePop) {
  // The queue is the publication edge of the streaming engine: a payload
  // written before push must be visible after the matching pop.
  constexpr std::size_t kIds = 256;
  CompletionQueue queue(8);
  ThreadPool pool(4);
  std::vector<std::size_t> payload(kIds, 0);
  for (std::size_t i = 0; i < kIds; ++i) {
    pool.submit([&, i] {
      payload[i] = i + 1;  // plain write, published by push's mutex
      queue.push(i);
    });
  }
  for (std::size_t n = 0; n < kIds; ++n) {
    const std::size_t id = queue.pop();
    EXPECT_EQ(payload[id], id + 1);
  }
  pool.wait_idle();
}

}  // namespace
}  // namespace rcc
