#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "mpc/augmenting_rounds.hpp"
#include "mpc/coreset_mpc.hpp"

namespace rcc {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPool, ShardedQueuesRunEveryTaskExactlyOnceAcrossSizes) {
  // The sharded submit path round-robins tasks over per-worker deques; no
  // pool shape may lose or duplicate a task.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    ThreadPool pool(threads);
    constexpr std::size_t kTasks = 4096;
    std::vector<std::atomic<int>> slots(kTasks);
    for (std::size_t i = 0; i < kTasks; ++i) {
      pool.submit([&slots, i] { slots[i].fetch_add(1); });
    }
    pool.wait_idle();
    for (std::size_t i = 0; i < kTasks; ++i) {
      ASSERT_EQ(slots[i].load(), 1) << "threads=" << threads << " task " << i;
    }
  }
}

TEST(ThreadPool, WorkStealingDrainsUnevenLoad) {
  // One shard gets a slow task; round-robin then lands short tasks on every
  // shard including the blocked one. Idle workers must steal those instead
  // of waiting, so the whole batch drains even while one worker is stuck.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  pool.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    done.fetch_add(1);
  });
  for (int i = 0; i < 400; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 401);
}

TEST(ThreadPool, SubmissionsFromExternalThreadsAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 500; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1500);
}

TEST(ThreadPool, AffinityPinnedPoolRunsIdentically) {
  // pin_affinity is a placement hint only: best-effort, Linux-only, and
  // invisible in results. The pinned pool must pass the same exactly-once
  // contract as the default one.
  ThreadPoolOptions options;
  options.pin_affinity = true;
  ThreadPool pool(4, options);
  EXPECT_EQ(pool.size(), 4u);
  const std::size_t n = 5000;
  std::vector<std::uint64_t> values(n);
  parallel_for(pool, n, [&values](std::size_t i) { values[i] = i; });
  const auto sum = std::accumulate(values.begin(), values.end(),
                                   std::uint64_t{0});
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(pool, n, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, CountSmallerThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  parallel_for(pool, 3, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (int i = 0; i < 3; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, ComputesParallelSum) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  std::vector<std::uint64_t> values(n);
  parallel_for(pool, n, [&](std::size_t i) { values[i] = i; });
  const auto sum = std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ParallelFor, TransientPoolOverload) {
  std::vector<std::atomic<int>> visits(64);
  parallel_for(64, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(CompletionQueue, SingleThreadedFifo) {
  CompletionQueue queue(4);
  for (std::size_t i = 0; i < 4; ++i) queue.push(i);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(queue.pop(), i);
}

TEST(CompletionQueue, ZeroCapacityIsClampedToOne) {
  CompletionQueue queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  queue.push(7);
  EXPECT_EQ(queue.pop(), 7u);
}

TEST(CompletionQueue, DeliversEveryIdExactlyOnceUnderContention) {
  // Many producers racing into a queue smaller than the id count: the
  // bounded ring must lose nothing, duplicate nothing, and unblock every
  // producer (push backpressure) while a single consumer drains.
  constexpr std::size_t kIds = 512;
  CompletionQueue queue(3);
  ThreadPool pool(8);
  for (std::size_t i = 0; i < kIds; ++i) {
    pool.submit([&queue, i] { queue.push(i); });
  }
  std::vector<int> seen(kIds, 0);
  for (std::size_t i = 0; i < kIds; ++i) ++seen[queue.pop()];
  pool.wait_idle();
  for (std::size_t i = 0; i < kIds; ++i) EXPECT_EQ(seen[i], 1) << i;
}

TEST(CompletionQueue, PushHappensBeforePop) {
  // The queue is the publication edge of the streaming engine: a payload
  // written before push must be visible after the matching pop.
  constexpr std::size_t kIds = 256;
  CompletionQueue queue(8);
  ThreadPool pool(4);
  std::vector<std::size_t> payload(kIds, 0);
  for (std::size_t i = 0; i < kIds; ++i) {
    pool.submit([&, i] {
      payload[i] = i + 1;  // plain write, published by push's mutex
      queue.push(i);
    });
  }
  for (std::size_t n = 0; n < kIds; ++n) {
    const std::size_t id = queue.pop();
    EXPECT_EQ(payload[id], id + 1);
  }
  pool.wait_idle();
}

// ---------------------------------------------------------------------------
// Determinism contract: the simulators' results are a function of (input,
// seed), never of the pool shape. Runs across thread counts, with and
// without affinity pinning, and with no pool at all must be bit-identical.

TEST(PoolShapeDifferential, MpcResultsIdenticalAcrossThreadCountsAndAffinity) {
  Rng gen(42);
  const EdgeList general = gnp(500, 8.0 / 500, gen);
  const EdgeList bipartite = random_bipartite(120, 150, 0.06, gen);

  MpcEngineConfig config;
  config.mpc.num_machines = 8;
  config.mpc.memory_words = std::uint64_t{1} << 40;
  config.max_rounds = 3;
  AugmentingRoundsConfig aug;
  aug.max_path_length = 5;

  Rng base_rng(7);
  const AugmentingMpcResult base_aug = run_matching_rounds_augmenting(
      general, config, aug, 0, base_rng);  // sequential: no pool
  Rng base_rng2(7);
  const CoresetMpcMatchingResult base_coreset =
      coreset_mpc_matching_rounds(bipartite, config, 120, base_rng2);

  struct Shape {
    std::size_t threads;
    bool pin;
  };
  for (const Shape shape : {Shape{1, false}, Shape{2, false}, Shape{8, false},
                            Shape{8, true}}) {
    ThreadPoolOptions options;
    options.pin_affinity = shape.pin;
    ThreadPool pool(shape.threads, options);
    const std::string what = "threads=" + std::to_string(shape.threads) +
                             " pin=" + std::to_string(shape.pin);

    Rng rng(7);
    const AugmentingMpcResult got = run_matching_rounds_augmenting(
        general, config, aug, 0, rng, &pool);
    ASSERT_EQ(got.matching.size(), base_aug.matching.size()) << what;
    for (VertexId v = 0; v < general.num_vertices(); ++v) {
      ASSERT_EQ(got.matching.mate(v), base_aug.matching.mate(v))
          << what << " vertex " << v;
    }
    EXPECT_EQ(got.rounds, base_aug.rounds) << what;
    EXPECT_EQ(got.certified, base_aug.certified) << what;
    EXPECT_EQ(got.total_augmentations, base_aug.total_augmentations) << what;
    EXPECT_EQ(got.stats.total_comm_words, base_aug.stats.total_comm_words)
        << what;

    Rng rng2(7);
    const CoresetMpcMatchingResult got_coreset =
        coreset_mpc_matching_rounds(bipartite, config, 120, rng2, &pool);
    ASSERT_EQ(got_coreset.matching.size(), base_coreset.matching.size())
        << what;
    for (VertexId v = 0; v < bipartite.num_vertices(); ++v) {
      ASSERT_EQ(got_coreset.matching.mate(v), base_coreset.matching.mate(v))
          << what << " vertex " << v;
    }
    EXPECT_EQ(got_coreset.stats.engine_rounds,
              base_coreset.stats.engine_rounds)
        << what;
    EXPECT_EQ(got_coreset.stats.total_comm_words,
              base_coreset.stats.total_comm_words)
        << what;
  }
}

}  // namespace
}  // namespace rcc
