// Structural white-box tests of the VC-Coreset peeling machinery: level
// thresholds, disjointness, and the relationship between fixed sets and
// residuals that Theorem 2's accounting relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "coreset/vc_coreset.hpp"
#include "graph/generators.hpp"
#include "matching/hopcroft_karp.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(VcCoresetStructure, FixedVerticesAreDistinct) {
  Rng rng(1);
  const VertexId n = 1 << 14;
  const EdgeList el = gnp(n, 24.0 / n, rng);
  const auto pieces = random_partition(el, 4, rng);
  const PeelingVcCoreset coreset;
  PartitionContext ctx{n, 4, 0, 0};
  const VcCoresetOutput out = coreset.build(pieces[0], ctx, rng);
  std::set<VertexId> unique(out.fixed_vertices.begin(), out.fixed_vertices.end());
  EXPECT_EQ(unique.size(), out.fixed_vertices.size());
}

TEST(VcCoresetStructure, FixedVerticesAbsentFromResidual) {
  Rng rng(2);
  const VertexId n = 1 << 14;
  const EdgeList el = gnp(n, 24.0 / n, rng);
  const auto pieces = random_partition(el, 4, rng);
  const PeelingVcCoreset coreset;
  PartitionContext ctx{n, 4, 1, 0};
  const VcCoresetOutput out = coreset.build(pieces[1], ctx, rng);
  std::set<VertexId> fixed(out.fixed_vertices.begin(), out.fixed_vertices.end());
  for (const Edge& e : out.residual_edges) {
    EXPECT_FALSE(fixed.count(e.u));
    EXPECT_FALSE(fixed.count(e.v));
  }
}

TEST(VcCoresetStructure, EveryPieceEdgeIsCoveredOrResidual) {
  // The soundness invariant of Section 3.2: any edge of G^(i) is incident
  // on some V_j^(i) (covered by the fixed set) or survives into G_Delta.
  Rng rng(3);
  const VertexId n = 1 << 13;
  const EdgeList el = gnp(n, 16.0 / n, rng);
  const auto pieces = random_partition(el, 4, rng);
  const PeelingVcCoreset coreset;
  PartitionContext ctx{n, 4, 2, 0};
  const VcCoresetOutput out = coreset.build(pieces[2], ctx, rng);
  std::vector<bool> fixed(n, false);
  for (VertexId v : out.fixed_vertices) fixed[v] = true;
  std::set<Edge> residual(out.residual_edges.begin(), out.residual_edges.end());
  for (const Edge& e : pieces[2]) {
    EXPECT_TRUE(fixed[e.u] || fixed[e.v] || residual.count(e) > 0)
        << e.u << "-" << e.v;
  }
}

TEST(VcCoresetStructure, NumLevelsMonotoneInN) {
  for (std::size_t k : {2u, 8u, 32u}) {
    int prev = 0;
    for (VertexId n : {1u << 10, 1u << 14, 1u << 18, 1u << 22}) {
      const int levels = PeelingVcCoreset::num_levels(n, k);
      EXPECT_GE(levels, prev);
      prev = levels;
    }
  }
}

TEST(VcCoresetStructure, NumLevelsDecreasesInK) {
  const VertexId n = 1 << 20;
  int prev = PeelingVcCoreset::num_levels(n, 1);
  for (std::size_t k : {4u, 16u, 64u, 256u}) {
    const int levels = PeelingVcCoreset::num_levels(n, k);
    EXPECT_LE(levels, prev);
    prev = levels;
  }
}

TEST(VcCoresetStructure, DormantRegimeShipsWholePiece) {
  // When n/k <= 8 log2 n, Delta = 1 and the coreset must be the identity
  // (the regime note of EXPERIMENTS.md, deviation 3).
  Rng rng(4);
  const VertexId n = 2048;
  const std::size_t k = 64;  // n/k = 32 < 8*11 = 88
  ASSERT_EQ(PeelingVcCoreset::num_levels(n, k), 1);
  const EdgeList el = gnp(n, 8.0 / n, rng);
  const auto pieces = random_partition(el, k, rng);
  const PeelingVcCoreset coreset;
  PartitionContext ctx{n, k, 0, 0};
  const VcCoresetOutput out = coreset.build(pieces[0], ctx, rng);
  EXPECT_TRUE(out.fixed_vertices.empty());
  EXPECT_EQ(out.residual_edges.num_edges(), pieces[0].num_edges());
}

TEST(HubGadgetStructure, MaximumMatchingEqualsPairs) {
  // The EXP2 gadget's optimum: exactly the planted pairs.
  const HubGadget g = hub_gadget(256, 32);
  const Matching m = hopcroft_karp(bipartite_graph(g.edges, g.left_size));
  EXPECT_EQ(m.size(), 256u);
}

TEST(HubGadgetStructure, HubsCannotExtendTheMatching) {
  // All left vertices matched in any maximum matching; hubs are surplus.
  const HubGadget g = hub_gadget(64, 64);
  const Matching m = hopcroft_karp(bipartite_graph(g.edges, g.left_size));
  EXPECT_EQ(m.size(), 64u);
  for (VertexId a = 0; a < 64; ++a) EXPECT_TRUE(m.is_matched(a));
}

}  // namespace
}  // namespace rcc
