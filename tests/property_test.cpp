// Randomized invariant suite over a generator x seed grid.
//
// Every protocol entry point — the simultaneous matching/VC protocols, the
// named paper protocols, and the MPC simulations — must satisfy, on every
// instance of the grid:
//
//   * every returned matching is a valid vertex-disjoint subset of G and
//     maximal in the summary union it was solved on (maximal in G itself
//     for the algorithms that guarantee it),
//   * every returned vertex cover covers all edges of G,
//   * the LP-duality sandwich, BOTH directions: any returned matching is at
//     most the maximum matching nu(G), any feasible cover has at least
//     nu(G) vertices AND at most 2 nu(G) (every composition here closes
//     with an endpoint cover of a maximal matching of what the fixed
//     vertices leave over, and the fixed vertices are covered by the same
//     budget on this grid — pinned empirically, worst realized ratio 2.0),
//     and the maximal-matching pairs satisfy |M| <= |V(M)| <= 2|M|.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "coreset/matching_coresets.hpp"
#include "coreset/vc_coreset.hpp"
#include "distributed/protocol.hpp"
#include "distributed/protocols.hpp"
#include "graph/generators.hpp"
#include "matching/max_matching.hpp"
#include "mpc/augmenting_rounds.hpp"
#include "mpc/coreset_mpc.hpp"
#include "mpc/filtering_mpc.hpp"
#include "vertex_cover/approx.hpp"

namespace rcc {
namespace {

struct Instance {
  std::string name;
  EdgeList edges;
  VertexId left_size;  // nonzero = known bipartition boundary
};

std::vector<Instance> instance_grid(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Instance> instances;
  instances.push_back({"empty", EdgeList(40), 0});
  instances.push_back({"gnp-sparse", gnp(300, 4.0 / 300, rng), 0});
  instances.push_back({"gnp-dense", gnp(120, 0.2, rng), 0});
  instances.push_back(
      {"bipartite", random_bipartite(80, 100, 0.08, rng), 80});
  instances.push_back(
      {"left-regular", left_regular_bipartite(60, 60, 3, rng), 60});
  instances.push_back({"star-forest", star_forest(12, 15), 0});
  instances.push_back({"path", path(150), 0});
  instances.push_back({"cycle", cycle(101), 0});
  instances.push_back(
      {"perfect-matching", random_perfect_matching(50, rng), 50});
  const HubGadget hub = hub_gadget(64, 8);
  instances.push_back({"hub-gadget", hub.edges, hub.left_size});
  return instances;
}

constexpr std::size_t kMachines = 4;
constexpr std::uint64_t kSeeds[] = {101, 202, 303};

/// A memory budget no instance of the grid can overflow: the MPC invariants
/// here are about solution correctness, not the cap.
MpcConfig roomy_mpc_config() {
  MpcConfig cfg;
  cfg.num_machines = kMachines;
  cfg.memory_words = std::uint64_t{1} << 40;
  return cfg;
}

void expect_valid_matching(const Matching& m, const Instance& inst,
                           std::size_t opt, const std::string& what) {
  EXPECT_TRUE(m.valid()) << what << " on " << inst.name;
  EXPECT_TRUE(m.subset_of(inst.edges)) << what << " on " << inst.name;
  EXPECT_LE(m.size(), opt) << what << " on " << inst.name;
}

void expect_feasible_cover(const VertexCover& cover, const Instance& inst,
                           std::size_t opt, const std::string& what) {
  EXPECT_TRUE(cover.covers(inst.edges)) << what << " on " << inst.name;
  // Weak LP duality: any feasible cover is at least the maximum matching.
  EXPECT_GE(cover.size(), opt) << what << " on " << inst.name;
  // ... and the sandwich closes from above: no cover on this grid exceeds
  // twice the maximum matching (the endpoint-cover bound |V(M)| <= 2|M| <=
  // 2 nu, extended to the peeling compositions empirically — every grid
  // point is deterministic, so this is a pin, not a theorem).
  EXPECT_LE(cover.size(), 2 * opt) << what << " on " << inst.name;
}

TEST(ProtocolProperties, MatchingEntryPointsReturnValidMatchings) {
  const MaximumMatchingCoreset maximum;
  const MaximalMatchingCoreset maximal;
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      const std::size_t opt =
          maximum_matching_size(inst.edges, inst.left_size);
      struct Run {
        std::string name;
        MatchingProtocolResult result;
      };
      std::vector<Run> runs;
      Rng rng(seed);
      runs.push_back({"max-coreset/max-solver",
                      run_matching_protocol(inst.edges, kMachines, maximum,
                                            ComposeSolver::kMaximum,
                                            inst.left_size, rng)});
      runs.push_back({"max-coreset/greedy-solver",
                      run_matching_protocol(inst.edges, kMachines, maximum,
                                            ComposeSolver::kGreedy,
                                            inst.left_size, rng)});
      runs.push_back({"maximal-coreset",
                      run_matching_protocol(inst.edges, kMachines, maximal,
                                            ComposeSolver::kGreedy,
                                            inst.left_size, rng)});
      runs.push_back(
          {"named-coreset-protocol",
           coreset_matching_protocol(inst.edges, kMachines, inst.left_size,
                                     rng)});
      runs.push_back({"subsampled-protocol",
                      subsampled_matching_protocol(inst.edges, kMachines,
                                                   /*alpha=*/2.0,
                                                   inst.left_size, rng)});
      for (const Run& run : runs) {
        expect_valid_matching(run.result.solution, inst, opt, run.name);
        // The coordinator solved exactly the union of the summaries, so the
        // matching must be maximal there (greedy and maximum solvers both).
        EXPECT_TRUE(run.result.solution.maximal_in(
            EdgeList::union_of(run.result.summaries)))
            << run.name << " on " << inst.name;
      }
    }
  }
}

TEST(ProtocolProperties, VertexCoverEntryPointsReturnFeasibleCovers) {
  const PeelingVcCoreset peeling;
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      const std::size_t opt =
          maximum_matching_size(inst.edges, inst.left_size);
      Rng rng(seed);
      expect_feasible_cover(
          run_vc_protocol(inst.edges, kMachines, peeling, rng).solution, inst,
          opt, "run_vc_protocol");
      expect_feasible_cover(coreset_vc_protocol(inst.edges, kMachines, rng).solution,
                            inst, opt, "coreset_vc_protocol");
      expect_feasible_cover(
          grouped_vc_protocol(inst.edges, kMachines, /*alpha=*/8.0, rng).solution,
          inst, opt, "grouped_vc_protocol");
    }
  }
}

TEST(ProtocolProperties, MpcEntryPointsKeepTheInvariants) {
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      const std::size_t opt =
          maximum_matching_size(inst.edges, inst.left_size);
      const MpcConfig cfg = roomy_mpc_config();
      for (bool random_input : {false, true}) {
        Rng rng(seed);
        const CoresetMpcMatchingResult m = coreset_mpc_matching(
            inst.edges, cfg, random_input, inst.left_size, rng);
        expect_valid_matching(m.matching, inst, opt, "coreset_mpc_matching");
        const CoresetMpcVcResult c =
            coreset_mpc_vertex_cover(inst.edges, cfg, random_input, rng);
        expect_feasible_cover(c.cover, inst, opt, "coreset_mpc_vertex_cover");
      }
    }
  }
}

TEST(ProtocolProperties, MultiRoundEntryPointsKeepTheInvariants) {
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      const std::size_t opt =
          maximum_matching_size(inst.edges, inst.left_size);
      MpcEngineConfig config;
      config.mpc = roomy_mpc_config();
      config.max_rounds = 32;

      Rng greedy_rng(seed);
      const CoresetMpcMatchingResult greedy = coreset_mpc_matching_rounds(
          inst.edges, config, inst.left_size, greedy_rng);
      expect_valid_matching(greedy.matching, inst, opt,
                            "coreset_mpc_matching_rounds");

      AugmentingRoundsConfig aug;  // default length cap 3: certificate 1.5
      Rng aug_rng(seed);
      const AugmentingMpcResult augmented = run_matching_rounds_augmenting(
          inst.edges, config, aug, inst.left_size, aug_rng);
      expect_valid_matching(augmented.matching, inst, opt,
                            "run_matching_rounds_augmenting");
      // 32 rounds are generous for this grid, so the certificate must have
      // fired, and it sandwiches the result against the exact optimum:
      // opt <= (1 + 1/(k+1)) |M| with 2k+1 = 3, i.e. 2 opt <= 3 |M|.
      EXPECT_TRUE(augmented.certified) << inst.name;
      EXPECT_GE(3 * augmented.matching.size(), 2 * opt) << inst.name;
    }
  }
}

TEST(ProtocolProperties, FilteringSatisfiesTheDualitySandwich) {
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      const std::size_t opt =
          maximum_matching_size(inst.edges, inst.left_size);
      Rng rng(seed);
      const FilteringMpcResult r =
          filtering_mpc(inst.edges, roomy_mpc_config(), rng);
      expect_valid_matching(r.maximal_matching, inst, opt, "filtering");
      EXPECT_TRUE(r.maximal_matching.maximal_in(inst.edges)) << inst.name;
      expect_feasible_cover(r.cover, inst, opt, "filtering-cover");
      // |M| <= |V(M)| <= 2|M|: the duality sandwich of a maximal matching
      // and its endpoint cover.
      EXPECT_LE(r.maximal_matching.size(), r.cover.size()) << inst.name;
      EXPECT_LE(r.cover.size(), 2 * r.maximal_matching.size()) << inst.name;
      // 2-approximation on both sides of the duality.
      EXPECT_GE(2 * r.maximal_matching.size(), opt) << inst.name;
      EXPECT_LE(r.cover.size(), 2 * opt) << inst.name;
    }
  }
}

TEST(ProtocolProperties, StreamingCanonicalMatchesBarrierOnTheFullGrid) {
  // The streaming combine path's determinism contract, pinned on the same
  // generator x seed grid as every other protocol invariant: in canonical
  // order, streaming is seed-for-seed identical to the barrier fold — exact
  // solutions, word-exact communication, and the caller's RNG left at the
  // same stream position.
  ThreadPool pool(4);
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      Rng barrier_rng(seed);
      const MatchingProtocolResult m_barrier = coreset_matching_protocol(
          inst.edges, kMachines, inst.left_size, barrier_rng, &pool);
      Rng stream_rng(seed);
      const MatchingProtocolResult m_streamed =
          coreset_matching_protocol_streaming(inst.edges, kMachines,
                                              inst.left_size, stream_rng,
                                              &pool);
      EdgeList barrier_edges = m_barrier.solution.to_edge_list();
      EdgeList streamed_edges = m_streamed.solution.to_edge_list();
      barrier_edges.sort();
      streamed_edges.sort();
      EXPECT_EQ(barrier_edges.edges(), streamed_edges.edges())
          << "matching on " << inst.name << " seed=" << seed;
      EXPECT_EQ(m_barrier.comm.total_words(), m_streamed.comm.total_words())
          << inst.name;
      EXPECT_EQ(barrier_rng.next_u64(), stream_rng.next_u64()) << inst.name;

      Rng vc_barrier_rng(seed);
      const VcProtocolResult c_barrier =
          coreset_vc_protocol(inst.edges, kMachines, vc_barrier_rng, &pool);
      Rng vc_stream_rng(seed);
      const VcProtocolResult c_streamed = coreset_vc_protocol_streaming(
          inst.edges, kMachines, vc_stream_rng, &pool);
      EXPECT_EQ(c_barrier.solution.vertices(), c_streamed.solution.vertices())
          << "cover on " << inst.name << " seed=" << seed;
      EXPECT_EQ(c_barrier.comm.total_words(), c_streamed.comm.total_words());
      EXPECT_EQ(vc_barrier_rng.next_u64(), vc_stream_rng.next_u64());

      Rng g_barrier_rng(seed);
      const GroupedVcProtocolResult g_barrier = grouped_vc_protocol(
          inst.edges, kMachines, /*alpha=*/8.0, g_barrier_rng, &pool);
      Rng g_stream_rng(seed);
      const GroupedVcProtocolResult g_streamed = grouped_vc_protocol_streaming(
          inst.edges, kMachines, /*alpha=*/8.0, g_stream_rng, &pool);
      EXPECT_EQ(g_barrier.solution.vertices(), g_streamed.solution.vertices())
          << "grouped cover on " << inst.name << " seed=" << seed;
      EXPECT_EQ(g_barrier_rng.next_u64(), g_stream_rng.next_u64());
    }
  }
}

TEST(ProtocolProperties, ArrivalOrderStreamingKeepsEveryInvariant) {
  // Arrival order forfeits exact reproducibility, never correctness: every
  // solution must still satisfy validity, feasibility, and the duality
  // sandwich on every grid point.
  StreamingOptions arrival;
  arrival.order = StreamingOrder::kArrival;
  ThreadPool pool(4);
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      const std::size_t opt =
          maximum_matching_size(inst.edges, inst.left_size);
      Rng m_rng(seed);
      const MatchingProtocolResult m = coreset_matching_protocol_streaming(
          inst.edges, kMachines, inst.left_size, m_rng, &pool, arrival);
      expect_valid_matching(m.solution, inst, opt, "streaming-arrival");
      EXPECT_TRUE(
          m.solution.maximal_in(EdgeList::union_of(m.summaries)))
          << inst.name;

      Rng c_rng(seed);
      const VcProtocolResult c = coreset_vc_protocol_streaming(
          inst.edges, kMachines, c_rng, &pool, arrival);
      expect_feasible_cover(c.solution, inst, opt, "streaming-arrival-vc");
    }
  }
}

TEST(ProtocolProperties, TwoApproximationCoverSandwich) {
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      const std::size_t opt =
          maximum_matching_size(inst.edges, inst.left_size);
      Rng rng(seed);
      const VertexCover cover = vc_two_approximation(inst.edges, rng);
      expect_feasible_cover(cover, inst, opt, "vc_two_approximation");
      EXPECT_LE(cover.size(), 2 * opt) << inst.name;
    }
  }
}

}  // namespace
}  // namespace rcc
