// Tests for the Crouch-Stubbs weighted matching coreset (R6).
#include "coreset/weighted_coreset.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

WeightedEdgeList random_weighted_bipartite(VertexId side, double p, double wmax,
                                           Rng& rng) {
  WeightedEdgeList w;
  w.num_vertices = 2 * side;
  for (VertexId u = 0; u < side; ++u) {
    for (VertexId v = side; v < 2 * side; ++v) {
      if (rng.bernoulli(p)) w.add(u, v, rng.uniform_real(0.5, wmax));
    }
  }
  return w;
}

TEST(CrouchStubbsCoreset, SummaryEdgesComeFromPiece) {
  Rng rng(1);
  const WeightedEdgeList piece = random_weighted_bipartite(40, 0.1, 64.0, rng);
  PartitionContext ctx{piece.num_vertices, 4, 0, 40};
  const WeightedCoresetOutput out = crouch_stubbs_coreset(piece, ctx);
  std::set<std::pair<VertexId, VertexId>> present;
  for (const auto& we : piece.edges) {
    present.insert({we.edge().u, we.edge().v});
  }
  for (const auto& we : out.edges.edges) {
    EXPECT_TRUE(present.count({we.edge().u, we.edge().v}));
  }
}

TEST(CrouchStubbsCoreset, SizeBoundedByClassesTimesMatching) {
  // Each weight class contributes a matching (<= side edges); with weights
  // in [0.5, 64] there are ~8 classes.
  Rng rng(2);
  const VertexId side = 50;
  const WeightedEdgeList piece =
      random_weighted_bipartite(side, 0.2, 64.0, rng);
  PartitionContext ctx{piece.num_vertices, 4, 0, side};
  const WeightedCoresetOutput out = crouch_stubbs_coreset(piece, ctx);
  EXPECT_LE(out.size_items(), 9u * side);
}

TEST(ComposeWeightedCoresets, EndToEndApproximation) {
  // Distributed Crouch-Stubbs versus the centralized greedy baseline: the
  // composed matching should reach at least ~1/4 of the centralized greedy
  // weight (greedy is itself a 1/2-approximation, so this is a loose,
  // robust end-to-end sanity bound).
  Rng rng(3);
  const VertexId side = 120;
  const WeightedEdgeList graph =
      random_weighted_bipartite(side, 0.05, 100.0, rng);
  const std::size_t k = 6;
  const auto pieces = random_partition_weighted(graph, k, rng);

  std::vector<WeightedCoresetOutput> summaries;
  for (std::size_t i = 0; i < k; ++i) {
    PartitionContext ctx{graph.num_vertices, k, i, side};
    summaries.push_back(crouch_stubbs_coreset(pieces[i], ctx));
  }
  const Matching composed =
      compose_weighted_coresets(summaries, graph.num_vertices, side);
  EXPECT_TRUE(composed.valid());

  const double composed_weight = matching_weight(composed, graph);
  const double central_greedy =
      matching_weight(greedy_weighted_matching(graph), graph);
  EXPECT_GE(composed_weight * 4.0, central_greedy);
}

TEST(ComposeWeightedCoresets, EmptySummariesYieldEmptyMatching) {
  std::vector<WeightedCoresetOutput> summaries(3);
  for (auto& s : summaries) s.edges.num_vertices = 10;
  const Matching m = compose_weighted_coresets(summaries, 10);
  EXPECT_EQ(m.size(), 0u);
}

}  // namespace
}  // namespace rcc
