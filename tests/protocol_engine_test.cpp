// ProtocolEngine tests: the sharded partitioner's exactly-once /
// determinism guarantees, and equivalence of the engine pipeline with the
// legacy driver shapes it replaced.
#include "distributed/protocol_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "coreset/matching_coresets.hpp"
#include "coreset/vc_coreset.hpp"
#include "distributed/protocols.hpp"
#include "graph/generators.hpp"
#include "matching/max_matching.hpp"
#include "partition/partition.hpp"
#include "partition/sharded_partition.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

std::vector<Edge> sorted_edges(EdgeSpan span) {
  std::vector<Edge> edges(span.begin(), span.end());
  std::sort(edges.begin(), edges.end());
  return edges;
}

TEST(ShardedPartition, PreservesEveryEdgeExactlyOnce) {
  Rng gen(1);
  const EdgeList el = gnp(500, 0.04, gen);
  const std::size_t k = 7;
  Rng rng(11);
  const ShardedPartition<Edge> parts = shard_random(el, k, rng);
  ASSERT_EQ(parts.num_machines(), k);
  EXPECT_EQ(parts.num_edges(), el.num_edges());

  std::vector<Edge> merged;
  for (std::size_t i = 0; i < k; ++i) {
    const auto s = parts.shard(i);
    EXPECT_EQ(s.size(), parts.shard_size(i));
    merged.insert(merged.end(), s.begin(), s.end());
  }
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, sorted_edges(el));
}

TEST(ShardedPartition, ShardsKeepGlobalInputOrder) {
  // The scatter is stable: within one machine, edges appear in the order
  // they occur in the input stream (what a sequential partitioner yields).
  Rng gen(2);
  EdgeList el(1000);
  for (VertexId v = 0; v + 1 < 1000; ++v) el.add(v, v + 1);  // distinct edges
  std::vector<std::size_t> position(el.num_edges());
  for (std::size_t i = 0; i < el.num_edges(); ++i) position[el[i].u] = i;

  Rng rng(3);
  const ShardedPartition<Edge> parts = shard_random(el, 5, rng);
  for (std::size_t i = 0; i < parts.num_machines(); ++i) {
    const auto s = parts.shard(i);
    for (std::size_t j = 1; j < s.size(); ++j) {
      EXPECT_LT(position[s[j - 1].u], position[s[j].u]);
    }
  }
}

TEST(ShardedPartition, DeterministicForFixedSeedRegardlessOfThreadCount) {
  Rng gen(4);
  // > kPartitionBatchEdges edges so several batches are in play.
  const EdgeList el = gnp(2000, 0.01, gen);
  ASSERT_GT(el.num_edges(), kPartitionBatchEdges);

  const std::size_t k = 6;
  Rng rng_seq(77);
  const ShardedPartition<Edge> seq = shard_random(el, k, rng_seq);
  for (std::size_t threads : {1u, 3u, 8u}) {
    ThreadPool pool(threads);
    Rng rng_par(77);
    const ShardedPartition<Edge> par = shard_random(el, k, rng_par, &pool);
    ASSERT_EQ(par.offsets(), seq.offsets()) << threads << " threads";
    for (std::size_t i = 0; i < k; ++i) {
      const auto a = seq.shard(i);
      const auto b = par.shard(i);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "machine " << i << ", " << threads << " threads";
    }
  }
}

TEST(ShardedPartition, RandomPartitionWrapperMatchesShards) {
  Rng gen(5);
  const EdgeList el = gnp(800, 0.02, gen);
  const std::size_t k = 4;
  ThreadPool pool(3);
  Rng a(9), b(9);
  const auto serial = random_partition(el, k, a);
  const auto pooled = random_partition(el, k, b, &pool);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < k; ++i) {
    ASSERT_EQ(serial[i].num_edges(), pooled[i].num_edges());
    for (std::size_t j = 0; j < serial[i].num_edges(); ++j) {
      EXPECT_EQ(serial[i][j], pooled[i][j]);
    }
  }
}

TEST(ShardedPartition, WeightedPreservesEdgesAndWeights) {
  WeightedEdgeList w;
  w.num_vertices = 50;
  Rng gen(6);
  for (int i = 0; i < 3000; ++i) {
    const auto u = static_cast<VertexId>(gen.next_below(49));
    w.add(u, static_cast<VertexId>(u + 1), gen.uniform_real(0.1, 9.0));
  }
  Rng rng(7);
  const ShardedPartition<WeightedEdge> parts = shard_random(w, 6, rng);
  std::vector<double> shard_weights;
  for (std::size_t i = 0; i < parts.num_machines(); ++i) {
    for (const WeightedEdge& e : parts.shard(i)) {
      shard_weights.push_back(e.weight);
    }
  }
  ASSERT_EQ(shard_weights.size(), w.edges.size());
  std::vector<double> original;
  for (const auto& e : w.edges) original.push_back(e.weight);
  std::sort(shard_weights.begin(), shard_weights.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(shard_weights, original);  // exact multiset equality
}

TEST(ProtocolEngine, MatchingProtocolEqualsManualPartitionPlusLegacyDriver) {
  // run_matching_protocol == (sharded partition, then the on_partition
  // driver) when both consume the same RNG stream — the engine is the same
  // pipeline, minus the per-machine EdgeList copies.
  Rng gen(8);
  const EdgeList el = gnp(1500, 5.0 / 1500, gen);
  const std::size_t k = 6;
  const MaximumMatchingCoreset coreset;

  Rng engine_rng(123);
  const MatchingProtocolResult engine = run_matching_protocol(
      el, k, coreset, ComposeSolver::kMaximum, 0, engine_rng, nullptr);

  Rng manual_rng(123);
  const ShardedPartition<Edge> parts = shard_random(el, k, manual_rng);
  std::vector<EdgeList> pieces;
  for (std::size_t i = 0; i < k; ++i) {
    pieces.push_back(shard_span(parts, i).to_edge_list());
  }
  const MatchingProtocolResult manual = run_matching_protocol_on_partition(
      pieces, coreset, ComposeSolver::kMaximum, 0, manual_rng, nullptr);

  EXPECT_EQ(engine.solution.size(), manual.solution.size());
  EXPECT_EQ(engine.comm.total_words(), manual.comm.total_words());
  ASSERT_EQ(engine.summaries.size(), manual.summaries.size());
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(engine.summaries[i].num_edges(), manual.summaries[i].num_edges());
  }
}

TEST(ProtocolEngine, VcProtocolEqualsManualPartitionPlusLegacyDriver) {
  Rng gen(9);
  const EdgeList el = gnp(1200, 6.0 / 1200, gen);
  const std::size_t k = 5;
  const PeelingVcCoreset coreset;

  Rng engine_rng(321);
  const VcProtocolResult engine =
      run_vc_protocol(el, k, coreset, engine_rng, nullptr);

  Rng manual_rng(321);
  const ShardedPartition<Edge> parts = shard_random(el, k, manual_rng);
  std::vector<EdgeList> pieces;
  for (std::size_t i = 0; i < k; ++i) {
    pieces.push_back(shard_span(parts, i).to_edge_list());
  }
  const VcProtocolResult manual = run_vc_protocol_on_partition(
      pieces, coreset, el.num_vertices(), manual_rng, nullptr);

  EXPECT_EQ(engine.solution.size(), manual.solution.size());
  EXPECT_EQ(engine.comm.total_words(), manual.comm.total_words());
  EXPECT_TRUE(engine.solution.covers(el));
}

TEST(ProtocolEngine, BipartiteInstanceMatchesLegacyDriverAndStaysValid) {
  Rng gen(10);
  const VertexId side = 600;
  const EdgeList el = random_bipartite(side, side, 4.0 / side, gen);
  const std::size_t k = 4;
  const MaximumMatchingCoreset coreset;

  Rng engine_rng(55);
  const MatchingProtocolResult engine = run_matching_protocol(
      el, k, coreset, ComposeSolver::kMaximum, side, engine_rng, nullptr);
  EXPECT_TRUE(engine.solution.valid());
  EXPECT_TRUE(engine.solution.subset_of(el));

  Rng manual_rng(55);
  const ShardedPartition<Edge> parts = shard_random(el, k, manual_rng);
  std::vector<EdgeList> pieces;
  for (std::size_t i = 0; i < k; ++i) {
    pieces.push_back(shard_span(parts, i).to_edge_list());
  }
  const MatchingProtocolResult manual = run_matching_protocol_on_partition(
      pieces, coreset, ComposeSolver::kMaximum, side, manual_rng, nullptr);
  EXPECT_EQ(engine.solution.size(), manual.solution.size());
}

TEST(ProtocolEngine, ParallelMachinePhaseMatchesSequential) {
  Rng gen(11);
  const EdgeList el = gnp(1000, 8.0 / 1000, gen);
  ThreadPool pool(4);
  Rng a(99), b(99);
  const MatchingProtocolResult seq =
      coreset_matching_protocol(el, 8, 0, a, nullptr);
  const MatchingProtocolResult par =
      coreset_matching_protocol(el, 8, 0, b, &pool);
  EXPECT_EQ(seq.solution.size(), par.solution.size());
  EXPECT_EQ(seq.comm.total_words(), par.comm.total_words());
}

TEST(ProtocolEngine, EmptyGraphAndSingleMachine) {
  Rng rng(12);
  const EdgeList empty(64);
  const MatchingProtocolResult r =
      coreset_matching_protocol(empty, 4, 0, rng, nullptr);
  EXPECT_EQ(r.solution.size(), 0u);
  EXPECT_EQ(r.comm.total_words(), 0u);

  Rng rng2(13);
  const EdgeList el = gnp(200, 0.05, rng2);
  const MatchingProtocolResult one =
      coreset_matching_protocol(el, 1, 0, rng2, nullptr);
  EXPECT_TRUE(one.solution.valid());
  EXPECT_EQ(one.solution.size(), maximum_matching_size(el));
}

}  // namespace
}  // namespace rcc
