// Reproduces the structural facts of Appendix A (Propositions A.1/A.2,
// Lemma A.3) as statistical tests.
#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rcc {
namespace {

TEST(InducedMatching, SimpleExamples) {
  // Path 0-1-2-3: no degree-1 pair adjacent (1 and 2 have degree 2).
  EXPECT_EQ(induced_matching(path(4)).num_edges(), 0u);
  // Two disjoint edges: both are induced.
  EdgeList el(4);
  el.add(0, 1);
  el.add(2, 3);
  EXPECT_EQ(induced_matching(el).num_edges(), 2u);
}

TEST(InducedMatching, IsAlwaysAMatching) {
  Rng rng(1);
  for (int rep = 0; rep < 10; ++rep) {
    const EdgeList el = gnp(300, 2.0 / 300, rng);
    EXPECT_TRUE(is_matching(induced_matching(el)));
  }
}

// Lemma A.3: G(n, n, 1/n) contains an induced matching of size >= n/e^3
// w.h.p. (their constructive lower bound). The exact expectation of the full
// induced matching is n/e^2: an edge is present w.p. 1/n and each endpoint
// isolated otherwise w.p. (1-1/n)^{n-1} -> 1/e, giving n^2 * (1/n) * e^{-2}.
TEST(InducedMatching, RandomBipartiteSizeMatchesLemmaA3) {
  Rng rng(2);
  const VertexId n = 20000;
  std::vector<double> sizes;
  for (int rep = 0; rep < 5; ++rep) {
    const EdgeList el = random_bipartite(n, n, 1.0 / n, rng);
    sizes.push_back(static_cast<double>(induced_matching(el).num_edges()) / n);
  }
  const Summary s = summarize(sizes);
  EXPECT_GE(s.mean, std::exp(-3.0));           // the lemma's guarantee
  EXPECT_NEAR(s.mean, std::exp(-2.0), 0.01);   // the exact expectation
}

// Proposition A.2(a): #degree-1 left vertices of G(n, n, 1/n) ~ n/e.
TEST(DegreeOne, LeftCountMatchesPropositionA2) {
  Rng rng(3);
  const VertexId n = 20000;
  std::vector<double> fracs;
  for (int rep = 0; rep < 5; ++rep) {
    const EdgeList el = random_bipartite(n, n, 1.0 / n, rng);
    fracs.push_back(static_cast<double>(degree_one_count(el, n)) / n);
  }
  EXPECT_NEAR(summarize(fracs).mean, std::exp(-1.0), 0.01);
}

// Proposition A.1: N balls in M bins; singleton bins in a subset B number
// about (|B|/M) * N / e.
TEST(BallsInBins, SingletonCountMatchesPropositionA1) {
  Rng rng(4);
  const std::uint64_t M = 30000;
  const std::uint64_t N = 20000;  // N < M as in the proposition
  const std::uint64_t B = 10000;  // first B bins are the tracked subset
  std::vector<double> counts;
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<std::uint32_t> load(M, 0);
    for (std::uint64_t b = 0; b < N; ++b) ++load[rng.next_below(M)];
    std::uint64_t singles = 0;
    for (std::uint64_t i = 0; i < B; ++i) singles += (load[i] == 1) ? 1 : 0;
    counts.push_back(static_cast<double>(singles));
  }
  const double expected = (static_cast<double>(B) / M) * N *
                          std::exp(-static_cast<double>(N) / M);
  // Proposition A.1 states (B/M)*N/e for N = M; with N != M the Poisson rate
  // is N/M, hence the exact form above.
  EXPECT_NEAR(summarize(counts).mean / expected, 1.0, 0.03);
}

TEST(DegreeOneCount, PrefixRestriction) {
  EdgeList el(6);
  el.add(0, 5);
  el.add(1, 5);
  el.add(2, 3);
  // Degrees: 0:1 1:1 2:1 3:1 4:0 5:2.
  EXPECT_EQ(degree_one_count(el, 3), 3u);
  EXPECT_EQ(degree_one_count(el, 6), 4u);
}

TEST(CoversAllEdges, Detection) {
  EdgeList el(4);
  el.add(0, 1);
  el.add(2, 3);
  std::vector<bool> cover(4, false);
  EXPECT_FALSE(covers_all_edges(el, cover));
  cover[0] = true;
  EXPECT_FALSE(covers_all_edges(el, cover));
  cover[3] = true;
  EXPECT_TRUE(covers_all_edges(el, cover));
}

TEST(IsMatching, RejectsSharedEndpoint) {
  EdgeList el(4);
  el.add(0, 1);
  el.add(1, 2);
  EXPECT_FALSE(is_matching(el));
}

}  // namespace
}  // namespace rcc
