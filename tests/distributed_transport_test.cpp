// Cross-process machine phase over loopback sockets AND shared-memory rings
// (distributed/socket_transport.hpp, distributed/shm_transport.hpp + the
// kSocket/kShm branches of distributed/protocol_engine.hpp):
//
//   (a) both multi-process backends must be seed-for-seed IDENTICAL to
//       both the in-process barrier and in-process canonical streaming —
//       exact solutions, word-exact communication ledgers, per-machine
//       summary sizes, round counts, and the caller's RNG stream position —
//       across a generator x seed x k grid for every single-round protocol
//       driver (matching, VC, grouped VC, both weighted drivers) and every
//       streaming-capable multi-round combiner (coreset matching, coreset
//       VC, filtering, augmenting, EDCS),
//   (b) transport telemetry reports what actually crossed the process
//       boundary: k frames, framed bytes >= k headers (byte-identical
//       between socket and shm — same summary_wire frames), kInproc
//       reporting zeros; fork accounting separates the persistent shm pool
//       (k forks per RUN, piece frames down the rings) from the per-round
//       forking of the socket path and of non-round-invariant shm drivers,
//   (c) backpressure: frames far larger than the ring capacity flow through
//       chunked writes without deadlock or corruption,
//   (d) fault injection: a killed worker fails the run NAMING the machine
//       and the round (no hang) — before its frame, mid-frame, and (for the
//       persistent pool) mid-run after serving a full round; silent-but-live
//       workers time out listing every missing machine id; a worker that
//       ignores the shutdown handshake is killed and named. All death tests
//       — a lost worker is a failed run, not a recoverable condition.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <vector>

#include "coreset/matching_coresets.hpp"
#include "coreset/vc_coreset.hpp"
#include "distributed/protocol.hpp"
#include "distributed/protocols.hpp"
#include "distributed/shm_transport.hpp"
#include "distributed/socket_transport.hpp"
#include "distributed/summary_wire.hpp"
#include "distributed/weighted_matching_protocol.hpp"
#include "distributed/weighted_vc_protocol.hpp"
#include "graph/generators.hpp"
#include "mpc/augmenting_rounds.hpp"
#include "mpc/coreset_mpc.hpp"
#include "mpc/edcs_rounds.hpp"
#include "mpc/filtering_mpc.hpp"
#include "mpc/mpc_engine.hpp"
#include "util/thread_pool.hpp"

namespace rcc {
namespace {

std::vector<Edge> sorted_edges(const Matching& m) {
  EdgeList el = m.to_edge_list();
  el.sort();
  return el.edges();
}

StreamingOptions socket_options(int timeout_ms = 30000) {
  StreamingOptions opts;
  opts.transport = EngineTransport::kSocket;
  opts.socket.timeout_ms = timeout_ms;
  return opts;
}

StreamingOptions shm_options(int timeout_ms = 30000,
                             std::size_t ring_bytes = std::size_t{1} << 20) {
  StreamingOptions opts;
  opts.transport = EngineTransport::kShm;
  opts.shm.timeout_ms = timeout_ms;
  opts.shm.ring_bytes = ring_bytes;
  return opts;
}

/// The socket run received exactly one frame per machine and counted the
/// bytes behind them.
template <typename Result>
void expect_socket_telemetry(const Result& result, std::size_t k) {
  EXPECT_EQ(result.transport.kind, EngineTransport::kSocket);
  EXPECT_EQ(result.transport.frames, k);
  EXPECT_GE(result.transport.wire_bytes, k * kFrameHeaderBytes);
}

/// The shm run delivered one frame per machine through the rings, and its
/// framed bytes are IDENTICAL to the socket run's — both transports carry
/// the same summary_wire frames, only the pipe differs. A single engine
/// round outside a persistent pool forks its k workers itself.
template <typename Result>
void expect_shm_telemetry(const Result& shm, const Result& socket,
                          std::size_t k) {
  EXPECT_EQ(shm.transport.kind, EngineTransport::kShm);
  EXPECT_EQ(shm.transport.frames, k);
  EXPECT_EQ(shm.transport.wire_bytes, socket.transport.wire_bytes);
  EXPECT_EQ(shm.transport.forks, k);
}

TEST(DistributedTransport, MatchingProtocolMatchesInprocSeedForSeed) {
  const MaximumMatchingCoreset coreset;
  for (std::uint64_t seed : {1u, 2u}) {
    Rng gen(seed);
    const std::vector<EdgeList> instances = {
        gnp(300, 5.0 / 300, gen), random_bipartite(80, 100, 0.06, gen)};
    for (const EdgeList& el : instances) {
      for (const std::size_t k : {4u, 7u}) {
        Rng barrier_rng(seed);
        const MatchingProtocolResult barrier = run_matching_protocol(
            el, k, coreset, ComposeSolver::kMaximum, 0, barrier_rng);
        Rng inproc_rng(seed);
        const MatchingProtocolResult inproc = run_matching_protocol_streaming(
            el, k, coreset, ComposeSolver::kMaximum, 0, inproc_rng);
        Rng socket_rng(seed);
        const MatchingProtocolResult socket = run_matching_protocol_streaming(
            el, k, coreset, ComposeSolver::kMaximum, 0, socket_rng,
            /*pool=*/nullptr, socket_options());
        Rng shm_rng(seed);
        const MatchingProtocolResult shm = run_matching_protocol_streaming(
            el, k, coreset, ComposeSolver::kMaximum, 0, shm_rng,
            /*pool=*/nullptr, shm_options());

        EXPECT_EQ(sorted_edges(barrier.solution), sorted_edges(socket.solution))
            << "seed=" << seed << " k=" << k;
        EXPECT_EQ(sorted_edges(inproc.solution), sorted_edges(socket.solution));
        EXPECT_EQ(sorted_edges(barrier.solution), sorted_edges(shm.solution));
        EXPECT_EQ(barrier.comm.total_words(), socket.comm.total_words());
        EXPECT_EQ(barrier.comm.total_words(), shm.comm.total_words());
        ASSERT_EQ(barrier.summaries.size(), socket.summaries.size());
        ASSERT_EQ(barrier.summaries.size(), shm.summaries.size());
        for (std::size_t i = 0; i < k; ++i) {
          EXPECT_EQ(barrier.summaries[i].edges(), socket.summaries[i].edges());
          EXPECT_EQ(barrier.summaries[i].edges(), shm.summaries[i].edges());
        }
        // All four paths leave the caller's RNG at one stream position.
        const std::uint64_t expected = barrier_rng.next_u64();
        EXPECT_EQ(expected, inproc_rng.next_u64());
        EXPECT_EQ(expected, socket_rng.next_u64());
        EXPECT_EQ(expected, shm_rng.next_u64());

        expect_socket_telemetry(socket, k);
        expect_shm_telemetry(shm, socket, k);
        EXPECT_EQ(inproc.transport.kind, EngineTransport::kInproc);
        EXPECT_EQ(inproc.transport.wire_bytes, 0u);
        EXPECT_EQ(inproc.transport.frames, 0u);
      }
    }
  }
}

TEST(DistributedTransport, VcProtocolMatchesInprocSeedForSeed) {
  const PeelingVcCoreset coreset;
  for (std::uint64_t seed : {3u, 4u}) {
    Rng gen(seed);
    const EdgeList el = gnp(250, 6.0 / 250, gen);
    for (const std::size_t k : {4u, 6u}) {
      Rng barrier_rng(seed);
      const VcProtocolResult barrier =
          run_vc_protocol(el, k, coreset, barrier_rng);
      Rng socket_rng(seed);
      const VcProtocolResult socket = run_vc_protocol_streaming(
          el, k, coreset, socket_rng, /*pool=*/nullptr, socket_options());
      Rng shm_rng(seed);
      const VcProtocolResult shm = run_vc_protocol_streaming(
          el, k, coreset, shm_rng, /*pool=*/nullptr, shm_options());

      EXPECT_EQ(barrier.solution.vertices(), socket.solution.vertices())
          << "seed=" << seed << " k=" << k;
      EXPECT_EQ(barrier.solution.vertices(), shm.solution.vertices());
      EXPECT_EQ(barrier.comm.total_words(), socket.comm.total_words());
      EXPECT_EQ(barrier.comm.total_words(), shm.comm.total_words());
      ASSERT_EQ(barrier.summaries.size(), socket.summaries.size());
      ASSERT_EQ(barrier.summaries.size(), shm.summaries.size());
      for (std::size_t i = 0; i < k; ++i) {
        EXPECT_EQ(barrier.summaries[i].residual_edges.edges(),
                  socket.summaries[i].residual_edges.edges());
        EXPECT_EQ(barrier.summaries[i].fixed_vertices,
                  socket.summaries[i].fixed_vertices);
        EXPECT_EQ(barrier.summaries[i].residual_edges.edges(),
                  shm.summaries[i].residual_edges.edges());
        EXPECT_EQ(barrier.summaries[i].fixed_vertices,
                  shm.summaries[i].fixed_vertices);
      }
      const std::uint64_t expected = barrier_rng.next_u64();
      EXPECT_EQ(expected, socket_rng.next_u64());
      EXPECT_EQ(expected, shm_rng.next_u64());
      expect_socket_telemetry(socket, k);
      expect_shm_telemetry(shm, socket, k);
    }
  }
}

TEST(DistributedTransport, GroupedVcProtocolMatchesInprocSeedForSeed) {
  // kGroupedVc on the wire: core coreset in the contracted group universe
  // plus the machine's pinned group ids.
  for (std::uint64_t seed : {7u, 8u}) {
    Rng gen(seed);
    const EdgeList el = gnp(240, 6.0 / 240, gen);
    for (const std::size_t k : {4u, 6u}) {
      for (const double alpha : {26.0, 96.0}) {
        Rng barrier_rng(seed);
        const GroupedVcProtocolResult barrier =
            grouped_vc_protocol(el, k, alpha, barrier_rng);
        Rng inproc_rng(seed);
        const GroupedVcProtocolResult inproc =
            grouped_vc_protocol_streaming(el, k, alpha, inproc_rng);
        Rng socket_rng(seed);
        const GroupedVcProtocolResult socket = grouped_vc_protocol_streaming(
            el, k, alpha, socket_rng, /*pool=*/nullptr, socket_options());
        Rng shm_rng(seed);
        const GroupedVcProtocolResult shm = grouped_vc_protocol_streaming(
            el, k, alpha, shm_rng, /*pool=*/nullptr, shm_options());

        EXPECT_EQ(barrier.solution.vertices(), socket.solution.vertices())
            << "seed=" << seed << " k=" << k << " alpha=" << alpha;
        EXPECT_EQ(inproc.solution.vertices(), socket.solution.vertices());
        EXPECT_EQ(barrier.solution.vertices(), shm.solution.vertices());
        EXPECT_EQ(barrier.comm.total_words(), socket.comm.total_words());
        EXPECT_EQ(barrier.comm.total_words(), shm.comm.total_words());
        ASSERT_EQ(barrier.summaries.size(), socket.summaries.size());
        ASSERT_EQ(barrier.summaries.size(), shm.summaries.size());
        for (std::size_t i = 0; i < k; ++i) {
          // Both folds move the core out of the retained summary; the pinned
          // groups stay behind and must have crossed the wire intact.
          EXPECT_EQ(barrier.summaries[i].pinned_groups,
                    socket.summaries[i].pinned_groups);
          EXPECT_EQ(barrier.summaries[i].pinned_groups,
                    shm.summaries[i].pinned_groups);
        }
        const std::uint64_t expected = barrier_rng.next_u64();
        EXPECT_EQ(expected, inproc_rng.next_u64());
        EXPECT_EQ(expected, socket_rng.next_u64());
        EXPECT_EQ(expected, shm_rng.next_u64());
        expect_socket_telemetry(socket, k);
        expect_shm_telemetry(shm, socket, k);
      }
    }
  }
}

TEST(DistributedTransport, WeightedDriversMatchInprocSeedForSeed) {
  // Covers the two remaining wire shapes: kWeightedEdges (bit-exact doubles
  // through the frame) and kVcCoresetBatch (one coreset per weight class).
  for (std::uint64_t seed : {5u, 6u}) {
    Rng gen(seed);
    WeightedEdgeList w;
    w.num_vertices = 120;
    for (int i = 0; i < 700; ++i) {
      const auto u = static_cast<VertexId>(gen.next_below(119));
      w.add(u, static_cast<VertexId>(u + 1), gen.uniform_real(0.5, 16.0));
    }
    constexpr std::size_t k = 5;

    Rng barrier_rng(seed);
    const WeightedMatchingProtocolResult barrier =
        weighted_matching_protocol(w, k, 0, barrier_rng);
    Rng socket_rng(seed);
    const WeightedMatchingProtocolResult socket =
        weighted_matching_protocol_streaming(w, k, 0, socket_rng,
                                             /*pool=*/nullptr,
                                             /*class_base=*/2.0,
                                             socket_options());
    Rng shm_rng(seed);
    const WeightedMatchingProtocolResult shm =
        weighted_matching_protocol_streaming(w, k, 0, shm_rng,
                                             /*pool=*/nullptr,
                                             /*class_base=*/2.0,
                                             shm_options());
    EXPECT_EQ(sorted_edges(barrier.solution), sorted_edges(socket.solution));
    EXPECT_EQ(sorted_edges(barrier.solution), sorted_edges(shm.solution));
    EXPECT_EQ(barrier.matching_weight, socket.matching_weight)
        << "weights must cross the wire bit-exactly";
    EXPECT_EQ(barrier.matching_weight, shm.matching_weight);
    EXPECT_EQ(barrier.comm.total_words(), socket.comm.total_words());
    EXPECT_EQ(barrier.comm.total_words(), shm.comm.total_words());
    EXPECT_EQ(barrier.max_classes_per_machine, socket.max_classes_per_machine);
    EXPECT_EQ(barrier.max_classes_per_machine, shm.max_classes_per_machine);
    const std::uint64_t expected = barrier_rng.next_u64();
    EXPECT_EQ(expected, socket_rng.next_u64());
    EXPECT_EQ(expected, shm_rng.next_u64());
    expect_socket_telemetry(socket, k);
    expect_shm_telemetry(shm, socket, k);

    const EdgeList el = gnp(180, 0.05, gen);
    VertexWeights weights(el.num_vertices());
    for (double& x : weights) x = gen.uniform_real(1.0, 64.0);
    Rng vc_barrier_rng(seed);
    const WeightedVcProtocolResult vc_barrier =
        weighted_vc_protocol(el, weights, k, vc_barrier_rng);
    Rng vc_socket_rng(seed);
    const WeightedVcProtocolResult vc_socket = weighted_vc_protocol_streaming(
        el, weights, k, vc_socket_rng, /*pool=*/nullptr, socket_options());
    Rng vc_shm_rng(seed);
    const WeightedVcProtocolResult vc_shm = weighted_vc_protocol_streaming(
        el, weights, k, vc_shm_rng, /*pool=*/nullptr, shm_options());
    EXPECT_EQ(vc_barrier.solution.vertices(), vc_socket.solution.vertices());
    EXPECT_EQ(vc_barrier.solution.vertices(), vc_shm.solution.vertices());
    EXPECT_EQ(vc_barrier.cover_cost, vc_socket.cover_cost);
    EXPECT_EQ(vc_barrier.cover_cost, vc_shm.cover_cost);
    EXPECT_EQ(vc_barrier.weight_classes, vc_socket.weight_classes);
    EXPECT_EQ(vc_barrier.weight_classes, vc_shm.weight_classes);
    const std::uint64_t vc_expected = vc_barrier_rng.next_u64();
    EXPECT_EQ(vc_expected, vc_socket_rng.next_u64());
    EXPECT_EQ(vc_expected, vc_shm_rng.next_u64());
    expect_socket_telemetry(vc_socket, k);
    expect_shm_telemetry(vc_shm, vc_socket, k);
  }
}

// ---------------------------------------------------------------------------
// Multi-round combiners through run_mpc_rounds: requesting a cross-process
// transport must replay the in-process barrier word for word, round for
// round. The socket path forks fresh workers every round; the shm path
// serves round-invariant builds (coreset matching/VC, EDCS) from ONE
// persistent worker pool — worker_forks == k for the whole run, pieces
// shipped down the rings — and re-forks per round for builds that read
// coordinator-evolving state (filtering, augmenting).

MpcEngineConfig base_config(const EdgeList& graph, std::size_t max_rounds) {
  MpcEngineConfig config;
  config.mpc = MpcConfig::paper_default(graph.num_vertices());
  config.max_rounds = max_rounds;
  config.input_already_random = true;
  return config;
}

MpcEngineConfig socket_config(const EdgeList& graph, std::size_t max_rounds) {
  MpcEngineConfig config = base_config(graph, max_rounds);
  config.streaming = socket_options();
  return config;
}

MpcEngineConfig shm_config(const EdgeList& graph, std::size_t max_rounds,
                           std::size_t ring_bytes = std::size_t{1} << 20) {
  MpcEngineConfig config = base_config(graph, max_rounds);
  config.streaming = shm_options(30000, ring_bytes);
  return config;
}

void expect_same_rounds(const MpcExecutionStats& barrier,
                        const MpcExecutionStats& socket) {
  EXPECT_EQ(barrier.mpc_rounds, socket.mpc_rounds);
  EXPECT_EQ(barrier.engine_rounds, socket.engine_rounds);
  EXPECT_EQ(barrier.total_comm_words, socket.total_comm_words);
  ASSERT_EQ(barrier.per_round.size(), socket.per_round.size());
  for (std::size_t i = 0; i < barrier.per_round.size(); ++i) {
    EXPECT_EQ(barrier.per_round[i].comm_words, socket.per_round[i].comm_words)
        << "round " << i;
    EXPECT_EQ(barrier.per_round[i].active_edges,
              socket.per_round[i].active_edges)
        << "round " << i;
    EXPECT_EQ(barrier.per_round[i].surviving_edges,
              socket.per_round[i].surviving_edges)
        << "round " << i;
  }
}

/// Fork accounting of a persistent-pool shm run against the socket run over
/// the same seed: the pool forked its k workers ONCE no matter how many
/// engine rounds ran, the socket path paid k per round, and both pushed the
/// same summary bytes up their pipes. Piece deliveries only exist on the
/// shm downlink.
void expect_persistent_pool(const MpcExecutionStats& shm,
                            const MpcExecutionStats& socket, std::size_t k) {
  EXPECT_EQ(shm.worker_forks, k);
  EXPECT_EQ(socket.worker_forks, k * socket.engine_rounds);
  EXPECT_EQ(shm.transport_wire_bytes, socket.transport_wire_bytes);
  EXPECT_GT(shm.transport_piece_bytes, 0u);
  EXPECT_EQ(socket.transport_piece_bytes, 0u);
}

/// Fork accounting of an ephemeral shm run (non-round-invariant build):
/// forked per round exactly like the socket path, no piece frames — the
/// workers inherit their shards copy-on-write.
void expect_ephemeral_shm(const MpcExecutionStats& shm,
                          const MpcExecutionStats& socket, std::size_t k) {
  EXPECT_EQ(shm.worker_forks, k * shm.engine_rounds);
  EXPECT_EQ(socket.worker_forks, k * socket.engine_rounds);
  EXPECT_EQ(shm.transport_wire_bytes, socket.transport_wire_bytes);
  EXPECT_EQ(shm.transport_piece_bytes, 0u);
}

/// A deterministic fixed-round-count harness: a round-invariant build (the
/// piece itself is its summary) plus a fold that recirculates every edge, so
/// with early_stop off the run executes EXACTLY max_rounds engine rounds on
/// every transport — the coreset drivers typically converge in one round,
/// which proves correctness but not amortization. This is the probe for the
/// persistent pool's fork claim: k forks per RUN versus k per round.
MpcExecutionStats run_recirculating_rounds(const EdgeList& el,
                                           MpcEngineConfig config, Rng& rng) {
  config.early_stop = false;
  config.round_invariant_build = true;
  const auto build = [](EdgeSpan piece, const PartitionContext&, Rng&) {
    return piece.to_edge_list();
  };
  const auto account = [](const EdgeList& s) {
    return MessageSize{s.num_edges(), 0};
  };
  struct RecirculatingFold {
    void absorb(EdgeList&, std::size_t, MpcRoundContext&) {}
    EdgeList finish(std::vector<EdgeList>&, MpcRoundContext& ctx, Rng&) {
      ctx.note_progress(1);
      ctx.survivors_out().assign(ctx.active_edges());
      return std::move(ctx.survivors_out());
    }
  } fold;
  return run_mpc_rounds(el, config, 0, rng, nullptr, build, account, fold);
}

TEST(DistributedTransport, CoresetMatchingRoundsMatchOverSocketAndShm) {
  for (std::uint64_t seed : {11u, 12u}) {
    Rng gen(seed);
    const EdgeList el = gnp(400, 5.0 / 400, gen);
    const std::size_t k = base_config(el, 3).mpc.num_machines;
    Rng barrier_rng(seed);
    const CoresetMpcMatchingResult barrier = coreset_mpc_matching_rounds(
        el, base_config(el, 3), 0, barrier_rng);
    Rng socket_rng(seed);
    const CoresetMpcMatchingResult socket = coreset_mpc_matching_rounds(
        el, socket_config(el, 3), 0, socket_rng);
    Rng shm_rng(seed);
    const CoresetMpcMatchingResult shm = coreset_mpc_matching_rounds(
        el, shm_config(el, 3), 0, shm_rng);
    EXPECT_EQ(sorted_edges(barrier.matching), sorted_edges(socket.matching));
    EXPECT_EQ(sorted_edges(barrier.matching), sorted_edges(shm.matching));
    EXPECT_EQ(barrier.rounds, socket.rounds);
    EXPECT_EQ(barrier.rounds, shm.rounds);
    expect_same_rounds(barrier.stats, socket.stats);
    expect_same_rounds(barrier.stats, shm.stats);
    const std::uint64_t expected = barrier_rng.next_u64();
    EXPECT_EQ(expected, socket_rng.next_u64());
    EXPECT_EQ(expected, shm_rng.next_u64());
    expect_persistent_pool(shm.stats, socket.stats, k);
  }
}

TEST(DistributedTransport, PersistentPoolAmortizesForksOverFiveRounds) {
  // The coreset drivers converge in one round on these instances, so the
  // amortization claim rides the recirculating harness: five engine rounds,
  // every one served by the k workers forked before round 0, while the
  // socket path pays k forks per round for the same bytes.
  constexpr std::size_t kRounds = 5;
  Rng gen(36);
  const EdgeList el = gnp(300, 6.0 / 300, gen);
  const std::size_t k = base_config(el, kRounds).mpc.num_machines;
  Rng barrier_rng(36);
  const MpcExecutionStats barrier =
      run_recirculating_rounds(el, base_config(el, kRounds), barrier_rng);
  Rng socket_rng(36);
  const MpcExecutionStats socket =
      run_recirculating_rounds(el, socket_config(el, kRounds), socket_rng);
  Rng shm_rng(36);
  const MpcExecutionStats shm =
      run_recirculating_rounds(el, shm_config(el, kRounds), shm_rng);
  ASSERT_EQ(barrier.engine_rounds, kRounds);
  expect_same_rounds(barrier, socket);
  expect_same_rounds(barrier, shm);
  const std::uint64_t expected = barrier_rng.next_u64();
  EXPECT_EQ(expected, socket_rng.next_u64());
  EXPECT_EQ(expected, shm_rng.next_u64());
  EXPECT_EQ(shm.worker_forks, k);               // one fork per run
  EXPECT_EQ(socket.worker_forks, k * kRounds);  // k per round
  EXPECT_EQ(shm.transport_wire_bytes, socket.transport_wire_bytes);
  EXPECT_GT(shm.transport_piece_bytes, 0u);
}

TEST(DistributedTransport, CoresetMatchingRoundsSurviveTinyUplinkRings) {
  // 512-byte rings against multi-KB summary frames: the coreset run's
  // uplink chunks dozens of handoffs per frame and must still replay the
  // barrier exactly. (Its round-0 piece rides the pool fork, so this leg
  // exercises the uplink; the recirculating test below covers the
  // downlink.)
  Rng gen(11);
  const EdgeList el = gnp(400, 5.0 / 400, gen);
  Rng barrier_rng(11);
  const CoresetMpcMatchingResult barrier =
      coreset_mpc_matching_rounds(el, base_config(el, 3), 0, barrier_rng);
  Rng shm_rng(11);
  const CoresetMpcMatchingResult shm = coreset_mpc_matching_rounds(
      el, shm_config(el, 3, /*ring_bytes=*/512), 0, shm_rng);
  EXPECT_EQ(sorted_edges(barrier.matching), sorted_edges(shm.matching));
  expect_same_rounds(barrier.stats, shm.stats);
  EXPECT_EQ(barrier_rng.next_u64(), shm_rng.next_u64());
}

TEST(DistributedTransport, RecirculatingRoundsSurviveTinyDownlinkRings) {
  // Round 0's piece rides the pool fork copy-on-write, so downlink piece
  // chunking is only exercised by rounds >= 1. The recirculating harness
  // pins four engine rounds against 512-byte rings: rounds 1-3 each ship
  // every machine's multi-KB piece through dozens of chunked ring handoffs
  // (prefix and body written back to back), and every summary chunks back
  // up — all of it must replay the barrier exactly.
  constexpr std::size_t kRounds = 4;
  Rng gen(11);
  const EdgeList el = gnp(400, 5.0 / 400, gen);
  Rng barrier_rng(11);
  const MpcExecutionStats barrier =
      run_recirculating_rounds(el, base_config(el, kRounds), barrier_rng);
  Rng shm_rng(11);
  const MpcExecutionStats shm = run_recirculating_rounds(
      el, shm_config(el, kRounds, /*ring_bytes=*/512), shm_rng);
  ASSERT_EQ(barrier.engine_rounds, kRounds);
  expect_same_rounds(barrier, shm);
  EXPECT_EQ(barrier_rng.next_u64(), shm_rng.next_u64());
  // Rounds 1-3 shipped real pieces: well beyond the four 72-byte control
  // frames a fork-served run would count.
  EXPECT_GT(shm.transport_piece_bytes,
            kRounds * base_config(el, kRounds).mpc.num_machines * 72u);
}

TEST(DistributedTransport, CoresetVcRoundsMatchOverSocketAndShm) {
  for (std::uint64_t seed : {13u, 14u}) {
    Rng gen(seed);
    const EdgeList el = gnp(350, 6.0 / 350, gen);
    const std::size_t k = base_config(el, 3).mpc.num_machines;
    Rng barrier_rng(seed);
    const CoresetMpcVcResult barrier =
        coreset_mpc_vertex_cover_rounds(el, base_config(el, 3), barrier_rng);
    Rng socket_rng(seed);
    const CoresetMpcVcResult socket =
        coreset_mpc_vertex_cover_rounds(el, socket_config(el, 3), socket_rng);
    Rng shm_rng(seed);
    const CoresetMpcVcResult shm =
        coreset_mpc_vertex_cover_rounds(el, shm_config(el, 3), shm_rng);
    EXPECT_EQ(barrier.cover.vertices(), socket.cover.vertices());
    EXPECT_EQ(barrier.cover.vertices(), shm.cover.vertices());
    EXPECT_EQ(barrier.rounds, socket.rounds);
    EXPECT_EQ(barrier.rounds, shm.rounds);
    expect_same_rounds(barrier.stats, socket.stats);
    expect_same_rounds(barrier.stats, shm.stats);
    const std::uint64_t expected = barrier_rng.next_u64();
    EXPECT_EQ(expected, socket_rng.next_u64());
    EXPECT_EQ(expected, shm_rng.next_u64());
    expect_persistent_pool(shm.stats, socket.stats, k);
  }
}

TEST(DistributedTransport, FilteringRoundsMatchOverSocketAndShm) {
  for (std::uint64_t seed : {15u, 16u}) {
    Rng gen(seed);
    const EdgeList el = gnp(300, 0.06, gen);
    const std::size_t k = base_config(el, 12).mpc.num_machines;
    Rng barrier_rng(seed);
    const FilteringMpcResult barrier =
        filtering_mpc_rounds(el, base_config(el, 12), barrier_rng);
    Rng socket_rng(seed);
    const FilteringMpcResult socket =
        filtering_mpc_rounds(el, socket_config(el, 12), socket_rng);
    Rng shm_rng(seed);
    const FilteringMpcResult shm =
        filtering_mpc_rounds(el, shm_config(el, 12), shm_rng);
    EXPECT_EQ(sorted_edges(barrier.maximal_matching),
              sorted_edges(socket.maximal_matching));
    EXPECT_EQ(sorted_edges(barrier.maximal_matching),
              sorted_edges(shm.maximal_matching));
    EXPECT_EQ(barrier.cover.vertices(), socket.cover.vertices());
    EXPECT_EQ(barrier.cover.vertices(), shm.cover.vertices());
    EXPECT_EQ(barrier.filter_iterations, socket.filter_iterations);
    EXPECT_EQ(barrier.filter_iterations, shm.filter_iterations);
    expect_same_rounds(barrier.stats, socket.stats);
    expect_same_rounds(barrier.stats, shm.stats);
    const std::uint64_t expected = barrier_rng.next_u64();
    EXPECT_EQ(expected, socket_rng.next_u64());
    EXPECT_EQ(expected, shm_rng.next_u64());
    // The filtering build reads the coordinator's evolving sample rate, so
    // its shm rounds re-fork ephemeral workers — no persistent pool.
    expect_ephemeral_shm(shm.stats, socket.stats, k);
  }
}

TEST(DistributedTransport, AugmentingRoundsMatchOverSocketAndShm) {
  const AugmentingRoundsConfig aug = AugmentingRoundsConfig::for_epsilon(0.34);
  for (std::uint64_t seed : {17u, 18u}) {
    Rng gen(seed);
    const EdgeList el = gnp(260, 5.0 / 260, gen);
    const std::size_t k = base_config(el, 20).mpc.num_machines;
    Rng barrier_rng(seed);
    const AugmentingMpcResult barrier = run_matching_rounds_augmenting(
        el, base_config(el, 20), aug, 0, barrier_rng);
    Rng socket_rng(seed);
    const AugmentingMpcResult socket = run_matching_rounds_augmenting(
        el, socket_config(el, 20), aug, 0, socket_rng);
    Rng shm_rng(seed);
    const AugmentingMpcResult shm = run_matching_rounds_augmenting(
        el, shm_config(el, 20), aug, 0, shm_rng);
    EXPECT_EQ(sorted_edges(barrier.matching), sorted_edges(socket.matching));
    EXPECT_EQ(sorted_edges(barrier.matching), sorted_edges(shm.matching));
    EXPECT_EQ(barrier.certified, socket.certified);
    EXPECT_EQ(barrier.certified, shm.certified);
    EXPECT_EQ(barrier.total_augmentations, socket.total_augmentations);
    EXPECT_EQ(barrier.total_augmentations, shm.total_augmentations);
    expect_same_rounds(barrier.stats, socket.stats);
    expect_same_rounds(barrier.stats, shm.stats);
    const std::uint64_t expected = barrier_rng.next_u64();
    EXPECT_EQ(expected, socket_rng.next_u64());
    EXPECT_EQ(expected, shm_rng.next_u64());
    // The augmenting build searches the coordinator's current matching, so
    // its shm rounds re-fork ephemeral workers — no persistent pool.
    expect_ephemeral_shm(shm.stats, socket.stats, k);
  }
}

TEST(DistributedTransport, EdcsRoundsMatchOverSocketAndShm) {
  for (std::uint64_t seed : {19u, 20u}) {
    Rng gen(seed);
    const EdgeList el = gnp(300, 4.0 / 300, gen);
    const std::size_t k = base_config(el, 4).mpc.num_machines;
    Rng barrier_rng(seed);
    const EdcsMpcResult barrier = run_matching_rounds_edcs(
        el, base_config(el, 4), EdcsRoundsConfig{}, 0, barrier_rng);
    Rng socket_rng(seed);
    const EdcsMpcResult socket = run_matching_rounds_edcs(
        el, socket_config(el, 4), EdcsRoundsConfig{}, 0, socket_rng);
    Rng shm_rng(seed);
    const EdcsMpcResult shm = run_matching_rounds_edcs(
        el, shm_config(el, 4), EdcsRoundsConfig{}, 0, shm_rng);
    EXPECT_EQ(sorted_edges(barrier.matching), sorted_edges(socket.matching));
    EXPECT_EQ(sorted_edges(barrier.matching), sorted_edges(shm.matching));
    EXPECT_EQ(barrier.cover.vertices(), socket.cover.vertices());
    EXPECT_EQ(barrier.cover.vertices(), shm.cover.vertices());
    EXPECT_EQ(barrier.certified, socket.certified);
    EXPECT_EQ(barrier.certified, shm.certified);
    expect_same_rounds(barrier.stats, socket.stats);
    expect_same_rounds(barrier.stats, shm.stats);
    const std::uint64_t expected = barrier_rng.next_u64();
    EXPECT_EQ(expected, socket_rng.next_u64());
    EXPECT_EQ(expected, shm_rng.next_u64());
    // build_edcs is a pure function of the shard and the const beta/lambda
    // parameters, so EDCS rounds ride the persistent pool too.
    expect_persistent_pool(shm.stats, socket.stats, k);
  }
}

// ---------------------------------------------------------------------------
// Fault injection. A run missing a worker must fail FAST (within the
// configured deadline) with a diagnostic naming the machine — never hang.
// threadsafe death tests: the statement re-execs, so the fork-heavy
// transport code runs in a clean child.

TEST(DistributedTransportDeathTest, KilledWorkerTimesOutNamingMachine) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng gen(31);
  const EdgeList el = gnp(120, 0.05, gen);
  const PeelingVcCoreset coreset;
  StreamingOptions opts = socket_options(/*timeout_ms=*/2000);
  opts.socket.fault_kill_machine = 2;
  Rng rng(31);
  EXPECT_DEATH(
      (void)run_vc_protocol_streaming(el, 4, coreset, rng, nullptr, opts),
      "socket transport: timed out after 2000 ms waiting for machine "
      "frames; missing machine ids: \\[2\\]");
}

TEST(DistributedTransportDeathTest, ConcurrentDuplicateMachineIdDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        // Two LIVE connections claim machine 0: the first parks after its
        // header, the second sends a complete frame. The duplicate must die
        // at the second header parse — waiting for the first claimant to
        // COMPLETE would let both absorb under arrival order while the
        // genuinely missing machine 1 never times out.
        LoopbackListener listener(0);
        FrameCollector collector(listener, /*expected=*/2,
                                 /*timeout_ms=*/5000);
        EdgeList el(4);
        el.add(0, 1);
        const std::vector<std::uint8_t> frame =
            encode_frame(el, /*machine=*/0);
        const int header_only = connect_to_leader(listener.port(), 1000);
        send_all(header_only, frame.data(), kFrameHeaderBytes);
        const int duplicate = connect_to_leader(listener.port(), 1000);
        send_all(duplicate, frame.data(), frame.size());
        (void)collector.next_ready();
        (void)collector.next_ready();
      },
      "socket transport: duplicate frame for machine 0");
}

TEST(DistributedTransportDeathTest, PartialFrameFailsNamingMachine) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng gen(32);
  const EdgeList el = gnp(120, 0.05, gen);
  const PeelingVcCoreset coreset;
  StreamingOptions opts = socket_options(/*timeout_ms=*/10000);
  opts.socket.fault_partial_frame_machine = 1;
  Rng rng(32);
  EXPECT_DEATH(
      (void)run_vc_protocol_streaming(el, 4, coreset, rng, nullptr, opts),
      "socket transport: machine 1 closed its connection mid-frame");
}

// ---------------------------------------------------------------------------
// Shm-transport fault injection: the ring coordinator must convert every
// lost-worker condition into a bounded-time failure that names the machine
// AND the round, and the shutdown handshake must never hang on a wedged
// worker.

TEST(DistributedTransport, ShmBackpressureTinyRingStillCompletes) {
  // 256-byte rings versus frames tens of KB wide: every frame crosses in
  // hundreds of chunked ring passes. The run must neither deadlock nor
  // corrupt — the result stays byte-identical to the barrier.
  Rng gen(33);
  const EdgeList el = gnp(300, 6.0 / 300, gen);
  const PeelingVcCoreset coreset;
  Rng barrier_rng(33);
  const VcProtocolResult barrier = run_vc_protocol(el, 6, coreset, barrier_rng);
  Rng shm_rng(33);
  const VcProtocolResult shm = run_vc_protocol_streaming(
      el, 6, coreset, shm_rng, /*pool=*/nullptr,
      shm_options(/*timeout_ms=*/30000, /*ring_bytes=*/256));
  EXPECT_EQ(barrier.solution.vertices(), shm.solution.vertices());
  EXPECT_EQ(barrier.comm.total_words(), shm.comm.total_words());
  EXPECT_EQ(barrier_rng.next_u64(), shm_rng.next_u64());
}

TEST(DistributedTransportDeathTest, ShmKilledWorkerDiesNamingMachine) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng gen(34);
  const EdgeList el = gnp(120, 0.05, gen);
  const PeelingVcCoreset coreset;
  StreamingOptions opts = shm_options(/*timeout_ms=*/5000);
  opts.shm.fault_kill_machine = 2;
  Rng rng(34);
  EXPECT_DEATH(
      (void)run_vc_protocol_streaming(el, 4, coreset, rng, nullptr, opts),
      "shm transport: machine 2 worker died before sending its round-0 "
      "frame");
}

TEST(DistributedTransportDeathTest, ShmPartialFrameDiesNamingMachine) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng gen(35);
  const EdgeList el = gnp(120, 0.05, gen);
  const PeelingVcCoreset coreset;
  StreamingOptions opts = shm_options(/*timeout_ms=*/5000);
  opts.shm.fault_partial_frame_machine = 1;
  Rng rng(35);
  EXPECT_DEATH(
      (void)run_vc_protocol_streaming(el, 4, coreset, rng, nullptr, opts),
      "shm transport: machine 1 worker died mid-frame in round 0");
}

TEST(DistributedTransportDeathTest, ShmPersistentWorkerKilledMidRunNamesRound) {
  // The pool must have served round 0 completely before the injected death:
  // a failure naming round 1 proves both the persistence (same worker, next
  // round) and the diagnosis.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng gen(11);
  const EdgeList el = gnp(300, 6.0 / 300, gen);
  MpcEngineConfig config = shm_config(el, 3);
  config.streaming.shm.timeout_ms = 5000;
  config.streaming.shm.fault_kill_machine = 1;
  config.streaming.shm.fault_kill_round = 1;
  Rng rng(11);
  EXPECT_DEATH(
      (void)run_recirculating_rounds(el, config, rng),
      "shm transport: machine 1 worker died before sending its round-1 "
      "frame");
}

TEST(DistributedTransportDeathTest, ShmIgnoredShutdownIsKilledAndNamed) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng gen(12);
  const EdgeList el = gnp(300, 6.0 / 300, gen);
  MpcEngineConfig config = shm_config(el, 2);
  config.streaming.shm.timeout_ms = 1500;
  config.streaming.shm.fault_ignore_shutdown_machine = 0;
  Rng rng(12);
  EXPECT_DEATH(
      (void)run_recirculating_rounds(el, config, rng),
      "shm transport: machine 0 worker ignored the shutdown handshake for "
      "1500 ms; killed");
}

TEST(DistributedTransportDeathTest, ShmSilentWorkersTimeOutListingMachines) {
  // Live-but-silent workers (no frame, no exit) are the one condition the
  // dead-worker sweep cannot classify: the round deadline fires and lists
  // every machine still owing its frame.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ShmTransportOptions opts;
        opts.timeout_ms = 1500;
        ShmWorkerPool pool(3, opts);
        pool.spawn([](std::size_t, ShmWorkerEndpoint&) {
          // Stay alive without ever writing; exit once the aborted
          // coordinator is gone so the death-test child leaks no processes.
          const pid_t parent = ::getppid();
          while (::getppid() == parent) ::usleep(20 * 1000);
          ::_exit(0);
        });
        pool.begin_round();
        (void)pool.next_ready();
      },
      "shm transport: timed out after 1500 ms waiting for round-0 machine "
      "frames; missing machine ids: \\[0, 1, 2\\]");
}

}  // namespace
}  // namespace rcc
