// Cross-process machine phase over loopback sockets
// (distributed/socket_transport.hpp + the kSocket branch of
// distributed/protocol_engine.hpp):
//
//   (a) the multi-process socket backend must be seed-for-seed IDENTICAL to
//       both the in-process barrier and in-process canonical streaming —
//       exact solutions, word-exact communication ledgers, per-machine
//       summary sizes, round counts, and the caller's RNG stream position —
//       across a generator x seed x k grid for every single-round protocol
//       driver (matching, VC, grouped VC, both weighted drivers) and every
//       streaming-capable multi-round combiner (coreset matching, coreset
//       VC, filtering, augmenting, EDCS),
//   (b) transport telemetry reports what actually crossed the process
//       boundary: k frames, framed bytes >= k headers, kInproc reporting
//       zeros,
//   (c) fault injection: a worker killed before it connects fails the run
//       within the configured deadline NAMING the missing machine id (no
//       hang); a worker dying mid-frame fails naming the machine that went
//       silent. Both are death tests — a lost worker is a failed run, not a
//       recoverable condition.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "coreset/matching_coresets.hpp"
#include "coreset/vc_coreset.hpp"
#include "distributed/protocol.hpp"
#include "distributed/protocols.hpp"
#include "distributed/socket_transport.hpp"
#include "distributed/summary_wire.hpp"
#include "distributed/weighted_matching_protocol.hpp"
#include "distributed/weighted_vc_protocol.hpp"
#include "graph/generators.hpp"
#include "mpc/augmenting_rounds.hpp"
#include "mpc/coreset_mpc.hpp"
#include "mpc/edcs_rounds.hpp"
#include "mpc/filtering_mpc.hpp"
#include "mpc/mpc_engine.hpp"
#include "util/thread_pool.hpp"

namespace rcc {
namespace {

std::vector<Edge> sorted_edges(const Matching& m) {
  EdgeList el = m.to_edge_list();
  el.sort();
  return el.edges();
}

StreamingOptions socket_options(int timeout_ms = 30000) {
  StreamingOptions opts;
  opts.transport = EngineTransport::kSocket;
  opts.socket.timeout_ms = timeout_ms;
  return opts;
}

/// The socket run received exactly one frame per machine and counted the
/// bytes behind them.
template <typename Result>
void expect_socket_telemetry(const Result& result, std::size_t k) {
  EXPECT_EQ(result.transport.kind, EngineTransport::kSocket);
  EXPECT_EQ(result.transport.frames, k);
  EXPECT_GE(result.transport.wire_bytes, k * kFrameHeaderBytes);
}

TEST(DistributedTransport, MatchingProtocolMatchesInprocSeedForSeed) {
  const MaximumMatchingCoreset coreset;
  for (std::uint64_t seed : {1u, 2u}) {
    Rng gen(seed);
    const std::vector<EdgeList> instances = {
        gnp(300, 5.0 / 300, gen), random_bipartite(80, 100, 0.06, gen)};
    for (const EdgeList& el : instances) {
      for (const std::size_t k : {4u, 7u}) {
        Rng barrier_rng(seed);
        const MatchingProtocolResult barrier = run_matching_protocol(
            el, k, coreset, ComposeSolver::kMaximum, 0, barrier_rng);
        Rng inproc_rng(seed);
        const MatchingProtocolResult inproc = run_matching_protocol_streaming(
            el, k, coreset, ComposeSolver::kMaximum, 0, inproc_rng);
        Rng socket_rng(seed);
        const MatchingProtocolResult socket = run_matching_protocol_streaming(
            el, k, coreset, ComposeSolver::kMaximum, 0, socket_rng,
            /*pool=*/nullptr, socket_options());

        EXPECT_EQ(sorted_edges(barrier.solution), sorted_edges(socket.solution))
            << "seed=" << seed << " k=" << k;
        EXPECT_EQ(sorted_edges(inproc.solution), sorted_edges(socket.solution));
        EXPECT_EQ(barrier.comm.total_words(), socket.comm.total_words());
        ASSERT_EQ(barrier.summaries.size(), socket.summaries.size());
        for (std::size_t i = 0; i < k; ++i) {
          EXPECT_EQ(barrier.summaries[i].edges(), socket.summaries[i].edges());
        }
        // All three paths leave the caller's RNG at one stream position.
        const std::uint64_t expected = barrier_rng.next_u64();
        EXPECT_EQ(expected, inproc_rng.next_u64());
        EXPECT_EQ(expected, socket_rng.next_u64());

        expect_socket_telemetry(socket, k);
        EXPECT_EQ(inproc.transport.kind, EngineTransport::kInproc);
        EXPECT_EQ(inproc.transport.wire_bytes, 0u);
        EXPECT_EQ(inproc.transport.frames, 0u);
      }
    }
  }
}

TEST(DistributedTransport, VcProtocolMatchesInprocSeedForSeed) {
  const PeelingVcCoreset coreset;
  for (std::uint64_t seed : {3u, 4u}) {
    Rng gen(seed);
    const EdgeList el = gnp(250, 6.0 / 250, gen);
    for (const std::size_t k : {4u, 6u}) {
      Rng barrier_rng(seed);
      const VcProtocolResult barrier =
          run_vc_protocol(el, k, coreset, barrier_rng);
      Rng socket_rng(seed);
      const VcProtocolResult socket = run_vc_protocol_streaming(
          el, k, coreset, socket_rng, /*pool=*/nullptr, socket_options());

      EXPECT_EQ(barrier.solution.vertices(), socket.solution.vertices())
          << "seed=" << seed << " k=" << k;
      EXPECT_EQ(barrier.comm.total_words(), socket.comm.total_words());
      ASSERT_EQ(barrier.summaries.size(), socket.summaries.size());
      for (std::size_t i = 0; i < k; ++i) {
        EXPECT_EQ(barrier.summaries[i].residual_edges.edges(),
                  socket.summaries[i].residual_edges.edges());
        EXPECT_EQ(barrier.summaries[i].fixed_vertices,
                  socket.summaries[i].fixed_vertices);
      }
      EXPECT_EQ(barrier_rng.next_u64(), socket_rng.next_u64());
      expect_socket_telemetry(socket, k);
    }
  }
}

TEST(DistributedTransport, GroupedVcProtocolMatchesInprocSeedForSeed) {
  // kGroupedVc on the wire: core coreset in the contracted group universe
  // plus the machine's pinned group ids.
  for (std::uint64_t seed : {7u, 8u}) {
    Rng gen(seed);
    const EdgeList el = gnp(240, 6.0 / 240, gen);
    for (const std::size_t k : {4u, 6u}) {
      for (const double alpha : {26.0, 96.0}) {
        Rng barrier_rng(seed);
        const GroupedVcProtocolResult barrier =
            grouped_vc_protocol(el, k, alpha, barrier_rng);
        Rng inproc_rng(seed);
        const GroupedVcProtocolResult inproc =
            grouped_vc_protocol_streaming(el, k, alpha, inproc_rng);
        Rng socket_rng(seed);
        const GroupedVcProtocolResult socket = grouped_vc_protocol_streaming(
            el, k, alpha, socket_rng, /*pool=*/nullptr, socket_options());

        EXPECT_EQ(barrier.solution.vertices(), socket.solution.vertices())
            << "seed=" << seed << " k=" << k << " alpha=" << alpha;
        EXPECT_EQ(inproc.solution.vertices(), socket.solution.vertices());
        EXPECT_EQ(barrier.comm.total_words(), socket.comm.total_words());
        ASSERT_EQ(barrier.summaries.size(), socket.summaries.size());
        for (std::size_t i = 0; i < k; ++i) {
          // Both folds move the core out of the retained summary; the pinned
          // groups stay behind and must have crossed the wire intact.
          EXPECT_EQ(barrier.summaries[i].pinned_groups,
                    socket.summaries[i].pinned_groups);
        }
        const std::uint64_t expected = barrier_rng.next_u64();
        EXPECT_EQ(expected, inproc_rng.next_u64());
        EXPECT_EQ(expected, socket_rng.next_u64());
        expect_socket_telemetry(socket, k);
      }
    }
  }
}

TEST(DistributedTransport, WeightedDriversMatchInprocSeedForSeed) {
  // Covers the two remaining wire shapes: kWeightedEdges (bit-exact doubles
  // through the frame) and kVcCoresetBatch (one coreset per weight class).
  for (std::uint64_t seed : {5u, 6u}) {
    Rng gen(seed);
    WeightedEdgeList w;
    w.num_vertices = 120;
    for (int i = 0; i < 700; ++i) {
      const auto u = static_cast<VertexId>(gen.next_below(119));
      w.add(u, static_cast<VertexId>(u + 1), gen.uniform_real(0.5, 16.0));
    }
    constexpr std::size_t k = 5;

    Rng barrier_rng(seed);
    const WeightedMatchingProtocolResult barrier =
        weighted_matching_protocol(w, k, 0, barrier_rng);
    Rng socket_rng(seed);
    const WeightedMatchingProtocolResult socket =
        weighted_matching_protocol_streaming(w, k, 0, socket_rng,
                                             /*pool=*/nullptr,
                                             /*class_base=*/2.0,
                                             socket_options());
    EXPECT_EQ(sorted_edges(barrier.solution), sorted_edges(socket.solution));
    EXPECT_EQ(barrier.matching_weight, socket.matching_weight)
        << "weights must cross the wire bit-exactly";
    EXPECT_EQ(barrier.comm.total_words(), socket.comm.total_words());
    EXPECT_EQ(barrier.max_classes_per_machine, socket.max_classes_per_machine);
    EXPECT_EQ(barrier_rng.next_u64(), socket_rng.next_u64());
    expect_socket_telemetry(socket, k);

    const EdgeList el = gnp(180, 0.05, gen);
    VertexWeights weights(el.num_vertices());
    for (double& x : weights) x = gen.uniform_real(1.0, 64.0);
    Rng vc_barrier_rng(seed);
    const WeightedVcProtocolResult vc_barrier =
        weighted_vc_protocol(el, weights, k, vc_barrier_rng);
    Rng vc_socket_rng(seed);
    const WeightedVcProtocolResult vc_socket = weighted_vc_protocol_streaming(
        el, weights, k, vc_socket_rng, /*pool=*/nullptr, socket_options());
    EXPECT_EQ(vc_barrier.solution.vertices(), vc_socket.solution.vertices());
    EXPECT_EQ(vc_barrier.cover_cost, vc_socket.cover_cost);
    EXPECT_EQ(vc_barrier.weight_classes, vc_socket.weight_classes);
    EXPECT_EQ(vc_barrier_rng.next_u64(), vc_socket_rng.next_u64());
    expect_socket_telemetry(vc_socket, k);
  }
}

// ---------------------------------------------------------------------------
// Multi-round combiners through run_mpc_rounds: requesting the socket
// transport must replay the in-process barrier word for word, round for
// round. Every round's machine phase runs in freshly forked workers.

MpcEngineConfig base_config(const EdgeList& graph, std::size_t max_rounds) {
  MpcEngineConfig config;
  config.mpc = MpcConfig::paper_default(graph.num_vertices());
  config.max_rounds = max_rounds;
  config.input_already_random = true;
  return config;
}

MpcEngineConfig socket_config(const EdgeList& graph, std::size_t max_rounds) {
  MpcEngineConfig config = base_config(graph, max_rounds);
  config.streaming = socket_options();
  return config;
}

void expect_same_rounds(const MpcExecutionStats& barrier,
                        const MpcExecutionStats& socket) {
  EXPECT_EQ(barrier.mpc_rounds, socket.mpc_rounds);
  EXPECT_EQ(barrier.engine_rounds, socket.engine_rounds);
  EXPECT_EQ(barrier.total_comm_words, socket.total_comm_words);
  ASSERT_EQ(barrier.per_round.size(), socket.per_round.size());
  for (std::size_t i = 0; i < barrier.per_round.size(); ++i) {
    EXPECT_EQ(barrier.per_round[i].comm_words, socket.per_round[i].comm_words)
        << "round " << i;
    EXPECT_EQ(barrier.per_round[i].active_edges,
              socket.per_round[i].active_edges)
        << "round " << i;
    EXPECT_EQ(barrier.per_round[i].surviving_edges,
              socket.per_round[i].surviving_edges)
        << "round " << i;
  }
}

TEST(DistributedTransport, CoresetMatchingRoundsMatchOverSocket) {
  for (std::uint64_t seed : {11u, 12u}) {
    Rng gen(seed);
    const EdgeList el = gnp(400, 5.0 / 400, gen);
    Rng barrier_rng(seed);
    const CoresetMpcMatchingResult barrier = coreset_mpc_matching_rounds(
        el, base_config(el, 3), 0, barrier_rng);
    Rng socket_rng(seed);
    const CoresetMpcMatchingResult socket = coreset_mpc_matching_rounds(
        el, socket_config(el, 3), 0, socket_rng);
    EXPECT_EQ(sorted_edges(barrier.matching), sorted_edges(socket.matching));
    EXPECT_EQ(barrier.rounds, socket.rounds);
    expect_same_rounds(barrier.stats, socket.stats);
    EXPECT_EQ(barrier_rng.next_u64(), socket_rng.next_u64());
  }
}

TEST(DistributedTransport, CoresetVcRoundsMatchOverSocket) {
  for (std::uint64_t seed : {13u, 14u}) {
    Rng gen(seed);
    const EdgeList el = gnp(350, 6.0 / 350, gen);
    Rng barrier_rng(seed);
    const CoresetMpcVcResult barrier =
        coreset_mpc_vertex_cover_rounds(el, base_config(el, 3), barrier_rng);
    Rng socket_rng(seed);
    const CoresetMpcVcResult socket =
        coreset_mpc_vertex_cover_rounds(el, socket_config(el, 3), socket_rng);
    EXPECT_EQ(barrier.cover.vertices(), socket.cover.vertices());
    EXPECT_EQ(barrier.rounds, socket.rounds);
    expect_same_rounds(barrier.stats, socket.stats);
    EXPECT_EQ(barrier_rng.next_u64(), socket_rng.next_u64());
  }
}

TEST(DistributedTransport, FilteringRoundsMatchOverSocket) {
  for (std::uint64_t seed : {15u, 16u}) {
    Rng gen(seed);
    const EdgeList el = gnp(300, 0.06, gen);
    Rng barrier_rng(seed);
    const FilteringMpcResult barrier =
        filtering_mpc_rounds(el, base_config(el, 12), barrier_rng);
    Rng socket_rng(seed);
    const FilteringMpcResult socket =
        filtering_mpc_rounds(el, socket_config(el, 12), socket_rng);
    EXPECT_EQ(sorted_edges(barrier.maximal_matching),
              sorted_edges(socket.maximal_matching));
    EXPECT_EQ(barrier.cover.vertices(), socket.cover.vertices());
    EXPECT_EQ(barrier.filter_iterations, socket.filter_iterations);
    expect_same_rounds(barrier.stats, socket.stats);
    EXPECT_EQ(barrier_rng.next_u64(), socket_rng.next_u64());
  }
}

TEST(DistributedTransport, AugmentingRoundsMatchOverSocket) {
  const AugmentingRoundsConfig aug = AugmentingRoundsConfig::for_epsilon(0.34);
  for (std::uint64_t seed : {17u, 18u}) {
    Rng gen(seed);
    const EdgeList el = gnp(260, 5.0 / 260, gen);
    Rng barrier_rng(seed);
    const AugmentingMpcResult barrier = run_matching_rounds_augmenting(
        el, base_config(el, 20), aug, 0, barrier_rng);
    Rng socket_rng(seed);
    const AugmentingMpcResult socket = run_matching_rounds_augmenting(
        el, socket_config(el, 20), aug, 0, socket_rng);
    EXPECT_EQ(sorted_edges(barrier.matching), sorted_edges(socket.matching));
    EXPECT_EQ(barrier.certified, socket.certified);
    EXPECT_EQ(barrier.total_augmentations, socket.total_augmentations);
    expect_same_rounds(barrier.stats, socket.stats);
    EXPECT_EQ(barrier_rng.next_u64(), socket_rng.next_u64());
  }
}

TEST(DistributedTransport, EdcsRoundsMatchOverSocket) {
  for (std::uint64_t seed : {19u, 20u}) {
    Rng gen(seed);
    const EdgeList el = gnp(300, 4.0 / 300, gen);
    Rng barrier_rng(seed);
    const EdcsMpcResult barrier = run_matching_rounds_edcs(
        el, base_config(el, 4), EdcsRoundsConfig{}, 0, barrier_rng);
    Rng socket_rng(seed);
    const EdcsMpcResult socket = run_matching_rounds_edcs(
        el, socket_config(el, 4), EdcsRoundsConfig{}, 0, socket_rng);
    EXPECT_EQ(sorted_edges(barrier.matching), sorted_edges(socket.matching));
    EXPECT_EQ(barrier.cover.vertices(), socket.cover.vertices());
    EXPECT_EQ(barrier.certified, socket.certified);
    expect_same_rounds(barrier.stats, socket.stats);
    EXPECT_EQ(barrier_rng.next_u64(), socket_rng.next_u64());
  }
}

// ---------------------------------------------------------------------------
// Fault injection. A run missing a worker must fail FAST (within the
// configured deadline) with a diagnostic naming the machine — never hang.
// threadsafe death tests: the statement re-execs, so the fork-heavy
// transport code runs in a clean child.

TEST(DistributedTransportDeathTest, KilledWorkerTimesOutNamingMachine) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng gen(31);
  const EdgeList el = gnp(120, 0.05, gen);
  const PeelingVcCoreset coreset;
  StreamingOptions opts = socket_options(/*timeout_ms=*/2000);
  opts.socket.fault_kill_machine = 2;
  Rng rng(31);
  EXPECT_DEATH(
      (void)run_vc_protocol_streaming(el, 4, coreset, rng, nullptr, opts),
      "socket transport: timed out after 2000 ms waiting for machine "
      "frames; missing machine ids: \\[2\\]");
}

TEST(DistributedTransportDeathTest, ConcurrentDuplicateMachineIdDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        // Two LIVE connections claim machine 0: the first parks after its
        // header, the second sends a complete frame. The duplicate must die
        // at the second header parse — waiting for the first claimant to
        // COMPLETE would let both absorb under arrival order while the
        // genuinely missing machine 1 never times out.
        LoopbackListener listener(0);
        FrameCollector collector(listener, /*expected=*/2,
                                 /*timeout_ms=*/5000);
        EdgeList el(4);
        el.add(0, 1);
        const std::vector<std::uint8_t> frame =
            encode_frame(el, /*machine=*/0);
        const int header_only = connect_to_leader(listener.port(), 1000);
        send_all(header_only, frame.data(), kFrameHeaderBytes);
        const int duplicate = connect_to_leader(listener.port(), 1000);
        send_all(duplicate, frame.data(), frame.size());
        (void)collector.next_ready();
        (void)collector.next_ready();
      },
      "socket transport: duplicate frame for machine 0");
}

TEST(DistributedTransportDeathTest, PartialFrameFailsNamingMachine) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng gen(32);
  const EdgeList el = gnp(120, 0.05, gen);
  const PeelingVcCoreset coreset;
  StreamingOptions opts = socket_options(/*timeout_ms=*/10000);
  opts.socket.fault_partial_frame_machine = 1;
  Rng rng(32);
  EXPECT_DEATH(
      (void)run_vc_protocol_streaming(el, 4, coreset, rng, nullptr, opts),
      "socket transport: machine 1 closed its connection mid-frame");
}

}  // namespace
}  // namespace rcc
