#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "graph/properties.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(Gnp, EdgeCountNearExpectation) {
  Rng rng(1);
  const VertexId n = 500;
  const double p = 0.05;
  double total = 0;
  const int reps = 20;
  for (int r = 0; r < reps; ++r) {
    total += static_cast<double>(gnp(n, p, rng).num_edges());
  }
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(total / reps / expected, 1.0, 0.05);
}

TEST(Gnp, NoDuplicatesNoLoops) {
  Rng rng(2);
  const EdgeList el = gnp(200, 0.1, rng);
  EXPECT_FALSE(el.has_parallel_edges());
  for (const Edge& e : el) {
    EXPECT_LT(e.u, e.v);
    EXPECT_LT(e.v, 200u);
  }
}

TEST(Gnp, ProbabilityOneIsComplete) {
  Rng rng(3);
  const EdgeList el = gnp(20, 1.0, rng);
  EXPECT_EQ(el.num_edges(), 190u);
}

TEST(Gnp, ProbabilityZeroIsEmpty) {
  Rng rng(4);
  EXPECT_TRUE(gnp(100, 0.0, rng).empty());
}

TEST(Gnp, EdgeDistributionIsUniformish) {
  // Every pair should appear with roughly the same frequency.
  Rng rng(5);
  const VertexId n = 12;
  std::map<Edge, int> counts;
  const int reps = 4000;
  for (int r = 0; r < reps; ++r) {
    for (const Edge& e : gnp(n, 0.3, rng)) ++counts[e];
  }
  for (const auto& [e, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / reps, 0.3, 0.06) << e.u << "-" << e.v;
  }
  EXPECT_EQ(counts.size(), static_cast<std::size_t>(n) * (n - 1) / 2);
}

TEST(Gnm, ExactEdgeCountDistinct) {
  Rng rng(6);
  const EdgeList el = gnm(100, 1234, rng);
  EXPECT_EQ(el.num_edges(), 1234u);
  EXPECT_FALSE(el.has_parallel_edges());
}

TEST(RandomBipartite, SidesRespected) {
  Rng rng(7);
  const EdgeList el = random_bipartite(30, 70, 0.2, rng);
  for (const Edge& e : el) {
    EXPECT_LT(e.u, 30u);
    EXPECT_GE(e.v, 30u);
    EXPECT_LT(e.v, 100u);
  }
}

TEST(RandomBipartite, EdgeCountNearExpectation) {
  Rng rng(8);
  double total = 0;
  const int reps = 20;
  for (int r = 0; r < reps; ++r) {
    total += static_cast<double>(random_bipartite(100, 200, 0.1, rng).num_edges());
  }
  EXPECT_NEAR(total / reps / (0.1 * 100 * 200), 1.0, 0.05);
}

TEST(LeftRegularBipartite, ExactLeftDegrees) {
  Rng rng(9);
  const EdgeList el = left_regular_bipartite(50, 80, 5, rng);
  EXPECT_EQ(el.num_edges(), 250u);
  const auto deg = el.degrees();
  for (VertexId u = 0; u < 50; ++u) EXPECT_EQ(deg[u], 5u);
  EXPECT_FALSE(el.has_parallel_edges());
}

TEST(RandomPerfectMatching, IsPerfectMatching) {
  Rng rng(10);
  const EdgeList el = random_perfect_matching(100, rng);
  EXPECT_EQ(el.num_edges(), 100u);
  EXPECT_TRUE(is_matching(el));
  const auto deg = el.degrees();
  for (VertexId v = 0; v < 200; ++v) EXPECT_EQ(deg[v], 1u);
}

TEST(CompleteBipartite, AllPairs) {
  const EdgeList el = complete_bipartite(4, 6);
  EXPECT_EQ(el.num_edges(), 24u);
}

TEST(Star, CenterDegree) {
  const EdgeList el = star(10);
  EXPECT_EQ(el.num_edges(), 9u);
  EXPECT_EQ(el.degrees()[0], 9u);
}

TEST(StarForest, Layout) {
  const EdgeList el = star_forest(3, 4);
  EXPECT_EQ(el.num_vertices(), 15u);
  EXPECT_EQ(el.num_edges(), 12u);
  const auto deg = el.degrees();
  EXPECT_EQ(deg[0], 4u);
  EXPECT_EQ(deg[5], 4u);
  EXPECT_EQ(deg[10], 4u);
  EXPECT_EQ(deg[1], 1u);
}

TEST(PathAndCycle, EdgeCounts) {
  EXPECT_EQ(path(10).num_edges(), 9u);
  EXPECT_EQ(cycle(10).num_edges(), 10u);
  EXPECT_EQ(path(1).num_edges(), 0u);
}

TEST(ChungLu, AverageDegreeRoughlyMatches) {
  Rng rng(11);
  const VertexId n = 5000;
  const EdgeList el = chung_lu_power_law(n, 2.5, 8.0, rng);
  const double avg = 2.0 * static_cast<double>(el.num_edges()) / n;
  EXPECT_GT(avg, 4.0);
  EXPECT_LT(avg, 12.0);
}

TEST(ChungLu, SkewedDegrees) {
  Rng rng(12);
  const EdgeList el = chung_lu_power_law(5000, 2.2, 6.0, rng);
  const auto deg = el.degrees();
  // Vertex 0 carries the largest expected weight; it should far exceed the
  // average degree.
  EXPECT_GT(deg[0], 30u);
}

TEST(HubGadget, StructureAndMatchingSize) {
  const HubGadget g = hub_gadget(64, 8);
  EXPECT_EQ(g.edges.num_vertices(), 64u * 2 + 8);
  EXPECT_EQ(g.edges.num_edges(), 64u + 64u * 8);
  // Maximum matching = n (pair edges), hubs add nothing beyond that.
  const Graph graph = bipartite_graph(g.edges, g.left_size);
  EXPECT_TRUE(graph.bipartition_consistent());
}

class GnpSweep : public ::testing::TestWithParam<double> {};

TEST_P(GnpSweep, EdgeCountWithinFourSigma) {
  const double p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p * 1e6) + 13);
  const VertexId n = 400;
  const double pairs = n * (n - 1) / 2.0;
  const EdgeList el = gnp(n, p, rng);
  const double mean = p * pairs;
  const double sigma = std::sqrt(pairs * p * (1 - p));
  EXPECT_NEAR(static_cast<double>(el.num_edges()), mean, 4 * sigma + 1);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, GnpSweep,
                         ::testing::Values(0.001, 0.01, 0.05, 0.2, 0.5, 0.9));

}  // namespace
}  // namespace rcc
