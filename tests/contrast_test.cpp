// Tests for the contrast systems: composable connectivity coresets (which
// need no randomness) and greedy spanners.
#include "contrast/connectivity_coreset.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "partition/partition.hpp"
#include "util/dsu.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(Dsu, BasicOperations) {
  Dsu dsu(5);
  EXPECT_EQ(dsu.num_components(), 5u);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_FALSE(dsu.unite(1, 0));
  EXPECT_TRUE(dsu.same(0, 1));
  EXPECT_FALSE(dsu.same(0, 2));
  EXPECT_EQ(dsu.component_size(1), 2u);
  EXPECT_EQ(dsu.num_components(), 4u);
}

TEST(SpanningForest, IsAForestWithSameComponents) {
  Rng rng(1);
  const EdgeList el = gnp(300, 0.02, rng);
  const EdgeList forest = spanning_forest(el);
  // Forest: no cycle — every edge must unite two different components.
  Dsu check(300);
  for (const Edge& e : forest) EXPECT_TRUE(check.unite(e.u, e.v));
  EXPECT_EQ(connected_components(Graph(forest)), connected_components(Graph(el)));
  EXPECT_LE(forest.num_edges(), 299u);
}

// The intro's claim: connectivity has a composable coreset that works for
// ANY partition, adversarial included.
class ConnectivityComposition : public ::testing::TestWithParam<int> {};

TEST_P(ConnectivityComposition, ExactUnderAllPartitioners) {
  Rng rng(GetParam());
  const VertexId n = 400;
  const EdgeList el = gnp(n, 1.5 / n, rng);  // below the giant-component knee
  const std::size_t true_components = connected_components(Graph(el));
  const SpanningForestCoreset coreset;

  auto compose_on = [&](const std::vector<EdgeList>& pieces) {
    std::vector<EdgeList> summaries;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      PartitionContext ctx{n, pieces.size(), i, 0};
      summaries.push_back(coreset.build(pieces[i], ctx, rng));
    }
    const EdgeList merged = spanning_forest(EdgeList::union_of(summaries));
    return connected_components(Graph(merged));
  };

  EXPECT_EQ(compose_on(random_partition(el, 7, rng)), true_components);
  EXPECT_EQ(compose_on(sorted_chunk_partition(el, 7)), true_components);
  EXPECT_EQ(compose_on(by_vertex_partition(el, 7)), true_components);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConnectivityComposition, ::testing::Range(1, 11));

TEST(GreedySpanner, KeepsGraphConnectedAndSparse) {
  Rng rng(2);
  const VertexId n = 300;
  const EdgeList el = gnp(n, 0.1, rng);
  const EdgeList spanner = greedy_spanner(el, 2);  // stretch 3
  EXPECT_LT(spanner.num_edges(), el.num_edges());
  EXPECT_EQ(connected_components(Graph(spanner)), connected_components(Graph(el)));
}

TEST(GreedySpanner, StretchBoundOnSampledPairs) {
  Rng rng(3);
  const VertexId n = 150;
  const EdgeList el = gnp(n, 0.15, rng);
  const int t = 2;
  const EdgeList spanner = greedy_spanner(el, t);
  // Stretch check on the original edges: d_spanner(u, v) <= 2t-1 for every
  // original edge (the defining property of the greedy construction).
  int checked = 0;
  for (const Edge& e : el) {
    if (++checked > 50) break;  // sample
    const std::uint64_t d = bfs_distance(spanner, e.u, e.v);
    EXPECT_LE(d, static_cast<std::uint64_t>(2 * t - 1));
  }
}

TEST(GreedySpanner, StretchOneKeepsEverything) {
  Rng rng(4);
  const EdgeList el = gnp(80, 0.1, rng);
  EdgeList dedup = el;
  dedup.dedup();
  const EdgeList spanner = greedy_spanner(dedup, 1);
  EXPECT_EQ(spanner.num_edges(), dedup.num_edges());
}

TEST(GreedySpanner, TriangleDropsOneEdgeAtStretch2) {
  EdgeList tri(3);
  tri.add(0, 1);
  tri.add(1, 2);
  tri.add(0, 2);
  const EdgeList spanner = greedy_spanner(tri, 2);
  EXPECT_EQ(spanner.num_edges(), 2u);
}

}  // namespace
}  // namespace rcc
