// Failure-injection and boundary-condition tests across the pipeline:
// empty graphs, k larger than m, degenerate parameters, duplicate edges.
#include <gtest/gtest.h>

#include "coreset/compose.hpp"
#include "coreset/matching_coresets.hpp"
#include "coreset/vc_coreset.hpp"
#include "distributed/protocols.hpp"
#include "graph/generators.hpp"
#include "matching/max_matching.hpp"
#include "mpc/coreset_mpc.hpp"
#include "mpc/filtering_mpc.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(EdgeCases, EmptyGraphThroughMatchingProtocol) {
  Rng rng(1);
  const EdgeList empty(100);
  const MatchingProtocolResult r =
      coreset_matching_protocol(empty, 4, 0, rng, nullptr);
  EXPECT_EQ(r.solution.size(), 0u);
  EXPECT_EQ(r.comm.total_words(), 0u);
}

TEST(EdgeCases, EmptyGraphThroughVcProtocol) {
  Rng rng(2);
  const EdgeList empty(100);
  const VcProtocolResult r = coreset_vc_protocol(empty, 4, rng, nullptr);
  EXPECT_EQ(r.solution.size(), 0u);
  EXPECT_TRUE(r.solution.covers(empty));
}

TEST(EdgeCases, MoreMachinesThanEdges) {
  Rng rng(3);
  EdgeList tiny(10);
  tiny.add(0, 1);
  tiny.add(2, 3);
  const MatchingProtocolResult r =
      coreset_matching_protocol(tiny, 16, 0, rng, nullptr);
  EXPECT_EQ(r.solution.size(), 2u);  // both edges survive somewhere
}

TEST(EdgeCases, SingleMachineProtocolIsCentralized) {
  Rng rng(4);
  const EdgeList el = gnp(500, 0.02, rng);
  const MatchingProtocolResult r =
      coreset_matching_protocol(el, 1, 0, rng, nullptr);
  // One machine's coreset is a maximum matching of all of G.
  EXPECT_EQ(r.solution.size(), maximum_matching_size(el));
}

TEST(EdgeCases, SingleEdgeGraph) {
  Rng rng(5);
  EdgeList one(2);
  one.add(0, 1);
  const MatchingProtocolResult r = coreset_matching_protocol(one, 8, 0, rng, nullptr);
  EXPECT_EQ(r.solution.size(), 1u);
  const VcProtocolResult v = coreset_vc_protocol(one, 8, rng, nullptr);
  EXPECT_TRUE(v.solution.covers(one));
}

TEST(EdgeCases, ParallelEdgesSurviveThePipeline) {
  Rng rng(6);
  EdgeList multi(6);
  for (int rep = 0; rep < 5; ++rep) {
    multi.add(0, 1);
    multi.add(2, 3);
    multi.add(4, 5);
  }
  const MatchingProtocolResult r =
      coreset_matching_protocol(multi, 3, 0, rng, nullptr);
  EXPECT_EQ(r.solution.size(), 3u);
  const VcProtocolResult v = coreset_vc_protocol(multi, 3, rng, nullptr);
  EXPECT_TRUE(v.solution.covers(multi));
}

TEST(EdgeCases, PeelingCoresetOnEmptyPiece) {
  Rng rng(7);
  const PeelingVcCoreset coreset;
  PartitionContext ctx{1000, 4, 0, 0};
  const VcCoresetOutput out = coreset.build(EdgeList(1000), ctx, rng);
  EXPECT_TRUE(out.fixed_vertices.empty());
  EXPECT_TRUE(out.residual_edges.empty());
}

TEST(EdgeCases, MaximumMatchingCoresetOnStar) {
  // A piece that is a star: maximum matching is a single edge.
  Rng rng(8);
  const MaximumMatchingCoreset coreset;
  PartitionContext ctx{50, 2, 0, 0};
  const EdgeList out = coreset.build(star(50), ctx, rng);
  EXPECT_EQ(out.num_edges(), 1u);
}

TEST(EdgeCases, FilteringMpcOnEmptyGraph) {
  Rng rng(9);
  MpcConfig cfg{4, 1000};
  const FilteringMpcResult r = filtering_mpc(EdgeList(10), cfg, rng);
  EXPECT_EQ(r.maximal_matching.size(), 0u);
  EXPECT_EQ(r.rounds, 1u);
}

TEST(EdgeCases, CoresetMpcTinyGraph) {
  Rng rng(10);
  EdgeList el(4);
  el.add(0, 1);
  el.add(2, 3);
  MpcConfig cfg{2, 1000};
  const CoresetMpcMatchingResult r = coreset_mpc_matching(el, cfg, false, 0, rng);
  EXPECT_EQ(r.matching.size(), 2u);
}

TEST(EdgeCases, ComposeWithAllEmptySummaries) {
  Rng rng(11);
  std::vector<EdgeList> empties(4, EdgeList(10));
  const Matching m =
      compose_matching_coresets(empties, ComposeSolver::kMaximum, 0, rng);
  EXPECT_EQ(m.size(), 0u);
  std::vector<VcCoresetOutput> vc_empties(4);
  for (auto& s : vc_empties) s.residual_edges = EdgeList(10);
  const VertexCover c = compose_vc_coresets(vc_empties, 10, rng);
  EXPECT_EQ(c.size(), 0u);
}

TEST(EdgeCases, DeterminismAcrossRuns) {
  const EdgeList el = [] {
    Rng g(12);
    return gnp(800, 0.01, g);
  }();
  Rng a(777), b(777);
  const MatchingProtocolResult ra = coreset_matching_protocol(el, 5, 0, a, nullptr);
  const MatchingProtocolResult rb = coreset_matching_protocol(el, 5, 0, b, nullptr);
  EXPECT_EQ(ra.solution.size(), rb.solution.size());
  EXPECT_EQ(ra.comm.total_words(), rb.comm.total_words());
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_EQ(ra.summaries[i].num_edges(), rb.summaries[i].num_edges());
    for (std::size_t j = 0; j < ra.summaries[i].num_edges(); ++j) {
      EXPECT_EQ(ra.summaries[i][j], rb.summaries[i][j]);
    }
  }
}

TEST(EdgeCases, GroupedProtocolGroupLargerThanUniverse) {
  Rng rng(13);
  EdgeList el(8);
  el.add(0, 5);
  el.add(1, 6);
  // alpha enormous: one group swallowing everything; cover = whole universe
  // but still feasible.
  const GroupedVcProtocolResult r = grouped_vc_protocol(el, 2, 1e6, rng, nullptr);
  EXPECT_TRUE(r.solution.covers(el));
}

}  // namespace
}  // namespace rcc
