// Wire format of machine summaries (distributed/summary_wire.hpp):
//
//   (a) round-trip: decode(encode(s)) is IDENTICAL to s for every summary
//       shape the transport carries, over a generator x seed grid — doubles
//       bit-exactly (the weighted differential depends on it),
//   (b) the frame header survives its own codec and self-describes the
//       payload length,
//   (c) adversarial inputs DIE with a "summary wire:" diagnostic instead of
//       reaching a fold: bad magic, version skew, unknown shape tag,
//       nonzero reserved word, oversize payload claim, shape mismatch,
//       truncation, trailing bytes, out-of-range ids, self-loops, negative
//       and NaN weights, and lying length prefixes.
#include "distributed/summary_wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "distributed/protocols.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

/// Encodes `summary` as machine `machine` and decodes it through the same
/// header-validation path the socket coordinator uses.
template <typename T>
T round_trip(const T& summary, std::uint32_t machine = 0) {
  const std::vector<std::uint8_t> frame = encode_frame(summary, machine);
  const FrameHeader header = decode_frame_header(frame.data());
  EXPECT_EQ(header.machine, machine);
  EXPECT_EQ(header.payload_bytes, frame.size() - kFrameHeaderBytes);
  return decode_frame_payload<T>(header, frame.data() + kFrameHeaderBytes);
}

TEST(SummaryWire, EdgeListRoundTripsOverGeneratorGrid) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    for (const EdgeList& el :
         {gnp(200, 0.05, rng), random_bipartite(60, 80, 0.1, rng),
          EdgeList(5)}) {
      const EdgeList back = round_trip(el, static_cast<std::uint32_t>(seed));
      EXPECT_EQ(back.num_vertices(), el.num_vertices());
      EXPECT_EQ(back.edges(), el.edges());
    }
  }
}

TEST(SummaryWire, VcCoresetRoundTrips) {
  Rng rng(7);
  VcCoresetOutput coreset;
  coreset.residual_edges = gnp(120, 0.04, rng);
  coreset.fixed_vertices = {0, 3, 17, 119};
  const VcCoresetOutput back = round_trip(coreset);
  EXPECT_EQ(back.residual_edges.edges(), coreset.residual_edges.edges());
  EXPECT_EQ(back.fixed_vertices, coreset.fixed_vertices);
}

TEST(SummaryWire, WeightedEdgesRoundTripBitExactly) {
  WeightedCoresetOutput coreset;
  coreset.edges.num_vertices = 16;
  // Weights chosen to catch any decimal detour: subnormal, non-representable
  // fractions, huge magnitudes.
  coreset.edges.edges = {{0, 1, 0.1}, {2, 3, 1.0 / 3.0},
                         {4, 5, std::numeric_limits<double>::denorm_min()},
                         {6, 7, 1e300}, {8, 9, 0.0}};
  const WeightedCoresetOutput back = round_trip(coreset);
  ASSERT_EQ(back.edges.edges.size(), coreset.edges.edges.size());
  for (std::size_t i = 0; i < coreset.edges.edges.size(); ++i) {
    EXPECT_EQ(back.edges.edges[i].u, coreset.edges.edges[i].u);
    EXPECT_EQ(back.edges.edges[i].v, coreset.edges.edges[i].v);
    std::uint64_t before, after;
    std::memcpy(&before, &coreset.edges.edges[i].weight, sizeof before);
    std::memcpy(&after, &back.edges.edges[i].weight, sizeof after);
    EXPECT_EQ(before, after) << "weight bits drifted at edge " << i;
  }
}

TEST(SummaryWire, PathBatchRoundTrips) {
  std::vector<AugmentingPath> paths(3);
  paths[0].vertices = {1, 2};
  paths[1].vertices = {3, 4, 5, 6};
  paths[2].vertices = {7, 8, 9, 10, 11, 12, 13, 14, 15, 16};  // spills inline
  const std::vector<AugmentingPath> back = round_trip(paths);
  EXPECT_EQ(back, paths);
}

TEST(SummaryWire, VcCoresetBatchRoundTrips) {
  Rng rng(11);
  std::vector<VcCoresetOutput> batch(3);
  for (VcCoresetOutput& coreset : batch) {
    coreset.residual_edges = gnp(50, 0.08, rng);
    coreset.fixed_vertices = {1, 2, 49};
  }
  batch[1].fixed_vertices.clear();  // an empty class must survive too
  const std::vector<VcCoresetOutput> back = round_trip(batch);
  ASSERT_EQ(back.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(back[i].residual_edges.edges(), batch[i].residual_edges.edges());
    EXPECT_EQ(back[i].fixed_vertices, batch[i].fixed_vertices);
  }
}

TEST(SummaryWire, GroupedVcSummaryRoundTrips) {
  Rng rng(13);
  GroupedVcSummary summary;
  summary.core.residual_edges = gnp(60, 0.06, rng);  // the group universe
  summary.core.fixed_vertices = {2, 5, 59};
  summary.pinned_groups = {0, 7, 41, 59};
  const GroupedVcSummary back = round_trip(summary);
  EXPECT_EQ(back.core.residual_edges.edges(),
            summary.core.residual_edges.edges());
  EXPECT_EQ(back.core.fixed_vertices, summary.core.fixed_vertices);
  EXPECT_EQ(back.pinned_groups, summary.pinned_groups);
}

TEST(SummaryWire, EmptySummariesRoundTrip) {
  EXPECT_EQ(round_trip(EdgeList(0)).num_edges(), 0u);
  EXPECT_TRUE(round_trip(std::vector<AugmentingPath>{}).empty());
  EXPECT_TRUE(round_trip(std::vector<VcCoresetOutput>{}).empty());
  const GroupedVcSummary empty_grouped = round_trip(GroupedVcSummary{});
  EXPECT_EQ(empty_grouped.core.residual_edges.num_edges(), 0u);
  EXPECT_TRUE(empty_grouped.pinned_groups.empty());
}

// ---------------------------------------------------------------------------
// Adversarial frames. Every mutation of a valid frame must abort through
// wire_fail with a "summary wire:" diagnostic — death tests, because decode
// errors are protocol violations, not recoverable conditions.

using SummaryWireDeathTest = ::testing::Test;

std::vector<std::uint8_t> valid_frame() {
  EdgeList el(4);
  el.add(0, 1);
  el.add(2, 3);
  return encode_frame(el, /*machine=*/2);
}

void decode_full_frame(const std::vector<std::uint8_t>& frame) {
  const FrameHeader header = decode_frame_header(frame.data());
  (void)decode_frame_payload<EdgeList>(header, frame.data() + kFrameHeaderBytes);
}

TEST(SummaryWireDeathTest, BadMagicDies) {
  std::vector<std::uint8_t> frame = valid_frame();
  frame[0] ^= 0xff;
  EXPECT_DEATH(decode_full_frame(frame), "summary wire: bad frame magic");
}

TEST(SummaryWireDeathTest, VersionSkewDies) {
  std::vector<std::uint8_t> frame = valid_frame();
  frame[4] = 9;  // version word
  EXPECT_DEATH(decode_full_frame(frame),
               "summary wire: frame version 9 does not match");
}

TEST(SummaryWireDeathTest, UnknownShapeTagDies) {
  std::vector<std::uint8_t> frame = valid_frame();
  frame[6] = 0;  // shape tag below the valid range
  EXPECT_DEATH(decode_full_frame(frame),
               "summary wire: unknown summary shape tag 0");
  frame[6] = 9;  // beyond kShutdown
  EXPECT_DEATH(decode_full_frame(frame),
               "summary wire: unknown summary shape tag 9");
}

TEST(SummaryWireDeathTest, NonzeroReservedWordDies) {
  std::vector<std::uint8_t> frame = valid_frame();
  frame[12] = 1;
  EXPECT_DEATH(decode_full_frame(frame), "summary wire: reserved header word");
}

TEST(SummaryWireDeathTest, OversizePayloadClaimDies) {
  std::vector<std::uint8_t> frame = valid_frame();
  const std::uint64_t huge = kMaxFramePayloadBytes + 1;
  std::memcpy(frame.data() + 16, &huge, sizeof huge);
  EXPECT_DEATH(decode_full_frame(frame),
               "summary wire: payload length .* exceeds");
}

TEST(SummaryWireDeathTest, ShapeMismatchDies) {
  const std::vector<std::uint8_t> frame = valid_frame();
  const FrameHeader header = decode_frame_header(frame.data());
  EXPECT_DEATH((void)decode_frame_payload<VcCoresetOutput>(
                   header, frame.data() + kFrameHeaderBytes),
               "summary wire: frame from machine 2 carries shape tag 1");
}

TEST(SummaryWireDeathTest, TruncatedPayloadDies) {
  std::vector<std::uint8_t> frame = valid_frame();
  FrameHeader header = decode_frame_header(frame.data());
  header.payload_bytes -= 3;  // collector delivers exactly the declared bytes
  EXPECT_DEATH((void)decode_frame_payload<EdgeList>(
                   header, frame.data() + kFrameHeaderBytes),
               "summary wire: .*(truncated payload|payload bytes remain)");
}

TEST(SummaryWireDeathTest, TrailingBytesDie) {
  EdgeList el(4);
  el.add(0, 1);
  std::vector<std::uint8_t> frame = encode_frame(el, 0);
  frame.push_back(0xee);  // one stray byte after the payload
  FrameHeader header = decode_frame_header(frame.data());
  header.payload_bytes += 1;
  EXPECT_DEATH((void)decode_frame_payload<EdgeList>(
                   header, frame.data() + kFrameHeaderBytes),
               "summary wire: frame from machine 0 leaves 1 trailing");
}

TEST(SummaryWireDeathTest, OutOfRangeVertexDies) {
  std::vector<std::uint8_t> payload;
  WireWriter writer(payload);
  writer.u32(4);   // universe of 4 vertices
  writer.u64(1);   // one edge
  writer.u32(1);
  writer.u32(4);   // == n: out of range
  WireReader reader(payload.data(), payload.size());
  EXPECT_DEATH((void)SummaryCodec<EdgeList>::decode(reader),
               "summary wire: edge 0 = \\(1, 4\\) leaves the 4-vertex");
}

TEST(SummaryWireDeathTest, SelfLoopDies) {
  std::vector<std::uint8_t> payload;
  WireWriter writer(payload);
  writer.u32(4);
  writer.u64(1);
  writer.u32(2);
  writer.u32(2);
  WireReader reader(payload.data(), payload.size());
  EXPECT_DEATH((void)SummaryCodec<EdgeList>::decode(reader),
               "summary wire: edge 0 is a self-loop at vertex 2");
}

TEST(SummaryWireDeathTest, NegativeAndNanWeightsDie) {
  for (const double bad :
       {-1.0, std::numeric_limits<double>::quiet_NaN()}) {
    std::vector<std::uint8_t> payload;
    WireWriter writer(payload);
    writer.u32(4);
    writer.u64(1);
    writer.u32(0);
    writer.u32(1);
    writer.f64(bad);
    WireReader reader(payload.data(), payload.size());
    EXPECT_DEATH((void)SummaryCodec<WeightedCoresetOutput>::decode(reader),
                 "summary wire: weighted edge 0 carries a negative or NaN");
  }
}

TEST(SummaryWireDeathTest, LyingLengthPrefixesDie) {
  // An edge list claiming more edges than the payload could hold must die at
  // the sanity gate, BEFORE any reserve.
  std::vector<std::uint8_t> payload;
  WireWriter writer(payload);
  writer.u32(4);
  writer.u64(std::uint64_t{1} << 60);
  WireReader reader(payload.data(), payload.size());
  EXPECT_DEATH((void)SummaryCodec<EdgeList>::decode(reader),
               "summary wire: edge list claims .* edges but only");

  // Same for a path batch whose path lies about its vertex count.
  std::vector<std::uint8_t> batch;
  WireWriter batch_writer(batch);
  batch_writer.u64(1);
  batch_writer.u32(1000);  // 1000 vertices, zero bytes behind them
  WireReader batch_reader(batch.data(), batch.size());
  EXPECT_DEATH(
      (void)SummaryCodec<std::vector<AugmentingPath>>::decode(batch_reader),
      "summary wire: path 0 claims 1000 vertices");

  // And for a grouped summary lying about its pinned-group count.
  std::vector<std::uint8_t> grouped;
  WireWriter grouped_writer(grouped);
  grouped_writer.u32(4);  // core: empty edge list over 4 groups
  grouped_writer.u64(0);
  grouped_writer.u64(0);  // no fixed vertices
  grouped_writer.u64(std::uint64_t{1} << 60);
  WireReader grouped_reader(grouped.data(), grouped.size());
  EXPECT_DEATH((void)SummaryCodec<GroupedVcSummary>::decode(grouped_reader),
               "summary wire: grouped vc summary claims .* pinned groups");
}

TEST(SummaryWireDeathTest, OutOfRangePinnedGroupDies) {
  std::vector<std::uint8_t> payload;
  WireWriter writer(payload);
  writer.u32(4);  // core: empty edge list over a 4-group universe
  writer.u64(0);
  writer.u64(0);  // no fixed vertices
  writer.u64(1);  // one pinned group...
  writer.u32(4);  // ...== n_groups: out of range
  WireReader reader(payload.data(), payload.size());
  EXPECT_DEATH((void)SummaryCodec<GroupedVcSummary>::decode(reader),
               "summary wire: pinned group 0 = 4 leaves the 4-group universe");
}

}  // namespace
}  // namespace rcc
