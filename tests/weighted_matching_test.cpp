#include "matching/weighted.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace rcc {
namespace {

WeightedEdgeList random_weighted(VertexId n, double p, double wmax, Rng& rng) {
  WeightedEdgeList w;
  w.num_vertices = n;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) w.add(u, v, rng.uniform_real(0.1, wmax));
    }
  }
  return w;
}

TEST(MatchingWeight, SumsEdgeWeights) {
  WeightedEdgeList w;
  w.num_vertices = 4;
  w.add(0, 1, 2.5);
  w.add(2, 3, 1.5);
  Matching m(4);
  m.match(0, 1);
  m.match(2, 3);
  EXPECT_DOUBLE_EQ(matching_weight(m, w), 4.0);
}

TEST(MatchingWeight, ParallelEdgesUseMaxWeight) {
  WeightedEdgeList w;
  w.num_vertices = 2;
  w.add(0, 1, 1.0);
  w.add(0, 1, 3.0);
  Matching m(2);
  m.match(0, 1);
  EXPECT_DOUBLE_EQ(matching_weight(m, w), 3.0);
}

TEST(GreedyWeighted, PicksHeaviestCompatible) {
  WeightedEdgeList w;
  w.num_vertices = 4;
  w.add(0, 1, 1.0);
  w.add(1, 2, 10.0);
  w.add(2, 3, 1.0);
  const Matching m = greedy_weighted_matching(w);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.mate(1), 2u);
}

TEST(GreedyWeighted, HalfApproximationOnRandomInstances) {
  Rng rng(1);
  for (int rep = 0; rep < 10; ++rep) {
    WeightedEdgeList w = random_weighted(9, 0.4, 10.0, rng);
    if (w.edges.size() > 24) continue;
    const double opt = exact_max_weight_matching(w);
    const double greedy = matching_weight(greedy_weighted_matching(w), w);
    EXPECT_GE(greedy * 2.0 + 1e-9, opt);
  }
}

TEST(SplitWeightClasses, GeometricBuckets) {
  WeightedEdgeList w;
  w.num_vertices = 8;
  w.add(0, 1, 1.0);   // class 0 (floor 1)
  w.add(2, 3, 2.5);   // class 1 (floor 2)
  w.add(4, 5, 4.0);   // class 2 (floor 4)
  w.add(6, 7, 7.9);   // class 2
  const WeightClasses wc = split_weight_classes(w, 2.0);
  ASSERT_EQ(wc.classes.size(), 3u);
  // Heaviest first.
  EXPECT_EQ(wc.classes[0].num_edges(), 2u);
  EXPECT_EQ(wc.classes[1].num_edges(), 1u);
  EXPECT_EQ(wc.classes[2].num_edges(), 1u);
  EXPECT_DOUBLE_EQ(wc.class_floor[0], 4.0);
  EXPECT_DOUBLE_EQ(wc.class_floor[2], 1.0);
}

TEST(SplitWeightClasses, AllZeroWeights) {
  WeightedEdgeList w;
  w.num_vertices = 2;
  w.add(0, 1, 0.0);
  const WeightClasses wc = split_weight_classes(w);
  ASSERT_EQ(wc.classes.size(), 1u);
  EXPECT_TRUE(wc.classes[0].empty());
}

TEST(CrouchStubbs, ValidMatching) {
  Rng rng(2);
  WeightedEdgeList w = random_weighted(50, 0.1, 100.0, rng);
  const Matching m = crouch_stubbs_matching(w);
  EXPECT_TRUE(m.valid());
  // Every matched edge exists in the instance.
  EdgeList support(w.num_vertices);
  for (const auto& we : w.edges) support.add(we.u, we.v);
  EXPECT_TRUE(m.subset_of(support));
}

TEST(CrouchStubbs, ApproximationOnSmallInstances) {
  // Guarantee with base-2 classes: >= OPT / 4 (factor 2 from rounding within
  // a class times factor 2 from the greedy merge). Assert the factor-4 bound.
  Rng rng(3);
  int tested = 0;
  for (int rep = 0; rep < 40 && tested < 12; ++rep) {
    WeightedEdgeList w = random_weighted(9, 0.35, 40.0, rng);
    if (w.edges.empty() || w.edges.size() > 22) continue;
    ++tested;
    const double opt = exact_max_weight_matching(w);
    const double cs = matching_weight(crouch_stubbs_matching(w), w);
    EXPECT_GE(cs * 4.0 + 1e-9, opt);
  }
  EXPECT_GE(tested, 5);
}

TEST(ExactMaxWeight, KnownInstance) {
  WeightedEdgeList w;
  w.num_vertices = 4;
  w.add(0, 1, 3.0);
  w.add(1, 2, 4.0);
  w.add(2, 3, 3.0);
  // Taking the two outer edges (3+3) beats the middle (4).
  EXPECT_DOUBLE_EQ(exact_max_weight_matching(w), 6.0);
}

TEST(ExactMaxWeight, EmptyInstance) {
  WeightedEdgeList w;
  w.num_vertices = 3;
  EXPECT_DOUBLE_EQ(exact_max_weight_matching(w), 0.0);
}

}  // namespace
}  // namespace rcc
