// Tests for the semi-streaming module.
#include "streaming/streaming_matching.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "matching/max_matching.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(StreamingMaximal, MatchesGreedyGivenOrder) {
  Rng rng(1);
  const EdgeList el = gnp(200, 0.05, rng);
  StreamingMaximalMatching stream(200);
  for (const Edge& e : el) stream.offer(e.u, e.v);
  const Matching& m = stream.matching();
  EXPECT_TRUE(m.valid());
  EXPECT_TRUE(m.maximal_in(el));
  EXPECT_TRUE(m.subset_of(el));
}

TEST(StreamingMaximal, TwoApproximation) {
  Rng rng(2);
  for (int rep = 0; rep < 10; ++rep) {
    const EdgeList el = gnp(150, 0.04, rng);
    StreamingMaximalMatching stream(150);
    for (const Edge& e : el) stream.offer(e.u, e.v);
    EXPECT_GE(2 * stream.matching().size(), maximum_matching_size(el));
  }
}

TEST(StreamingMaximal, OfferReportsTaken) {
  StreamingMaximalMatching stream(4);
  EXPECT_TRUE(stream.offer(0, 1));
  EXPECT_FALSE(stream.offer(1, 2));  // 1 already matched
  EXPECT_TRUE(stream.offer(2, 3));
  EXPECT_EQ(stream.state_words(), 4u);  // two matched edges, 2 words each
}

TEST(StreamingWeighted, FinalizeIsValidMatching) {
  Rng rng(3);
  StreamingWeightedMatching stream(100);
  for (int i = 0; i < 500; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(100));
    const auto v = static_cast<VertexId>(rng.next_below(100));
    if (u != v) stream.offer(u, v, rng.uniform_real(1.0, 100.0));
  }
  const Matching m = stream.finalize();
  EXPECT_TRUE(m.valid());
}

TEST(StreamingWeighted, ClassCountGrowsLogarithmically) {
  StreamingWeightedMatching stream(10);
  stream.offer(0, 1, 1.0);
  stream.offer(2, 3, 2.0);
  stream.offer(4, 5, 1024.0);
  EXPECT_EQ(stream.num_classes(), 11u);  // classes 0..10 for weight 2^10
}

TEST(StreamingWeighted, PrefersHeavyClasses) {
  StreamingWeightedMatching stream(4);
  stream.offer(0, 1, 1.0);    // light class, blocks 0 and 1 there
  stream.offer(1, 2, 100.0);  // heavy class
  const Matching m = stream.finalize();
  // The heavy edge must win the merge: 1-2 matched, 0 left out.
  EXPECT_TRUE(m.is_matched(1));
  EXPECT_EQ(m.mate(1), 2u);
  EXPECT_FALSE(m.is_matched(0));
}

TEST(StreamingWeighted, ConstantFactorOfGreedyOffline) {
  Rng rng(4);
  WeightedEdgeList w;
  w.num_vertices = 120;
  StreamingWeightedMatching stream(120);
  for (int i = 0; i < 2000; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(120));
    const auto v = static_cast<VertexId>(rng.next_below(120));
    if (u == v) continue;
    const double weight = rng.uniform_real(1.0, 512.0);
    w.add(u, v, weight);
    stream.offer(u, v, weight);
  }
  const double streamed = matching_weight(stream.finalize(), w);
  const double offline = matching_weight(greedy_weighted_matching(w), w);
  // Crouch-Stubbs per-class greedy + heaviest-first merge: within a small
  // constant of the offline greedy.
  EXPECT_GE(streamed * 4.0, offline);
}

TEST(StreamingWeighted, StateStaysNearLinear) {
  Rng rng(5);
  const VertexId n = 200;
  StreamingWeightedMatching stream(n);
  for (int i = 0; i < 20000; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    if (u != v) stream.offer(u, v, rng.uniform_real(1.0, 1000.0));
  }
  // <= (n/2) edges per class, ~10 classes.
  EXPECT_LE(stream.state_edges(), static_cast<std::size_t>(n / 2) * 11);
}

TEST(StreamingWeighted, ZeroAndNegativeWeightsIgnored) {
  StreamingWeightedMatching stream(4);
  stream.offer(0, 1, 0.0);
  stream.offer(2, 3, -1.0);
  EXPECT_EQ(stream.finalize().size(), 0u);
}

}  // namespace
}  // namespace rcc
