// Tests for weighted vertex cover: local-ratio baseline and the grouped
// simultaneous protocol (the paper's Section 1.1 weighted extension).
#include "vertex_cover/weighted_vc.hpp"

#include <gtest/gtest.h>

#include "distributed/weighted_vc_protocol.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

VertexWeights uniform_weights(VertexId n, double lo, double hi, Rng& rng) {
  VertexWeights w(n);
  for (auto& x : w) x = rng.uniform_real(lo, hi);
  return w;
}

TEST(CoverWeight, Sums) {
  VertexCover c(3);
  c.insert(0);
  c.insert(2);
  EXPECT_DOUBLE_EQ(cover_weight(c, {1.5, 10.0, 2.5}), 4.0);
}

TEST(LocalRatio, CoversAndCertifies) {
  Rng rng(1);
  for (int rep = 0; rep < 10; ++rep) {
    const EdgeList el = gnp(120, 0.05, rng);
    const VertexWeights w = uniform_weights(120, 0.5, 10.0, rng);
    const WeightedVcResult r = local_ratio_weighted_vc(el, w);
    EXPECT_TRUE(r.cover.covers(el));
    // Primal-dual sandwich: lower_bound <= OPT <= cover cost <= 2 * LB.
    const double cost = cover_weight(r.cover, w);
    EXPECT_LE(cost, 2.0 * r.lower_bound + 1e-9);
  }
}

TEST(LocalRatio, TwoApproxAgainstExactOnSmallInstances) {
  Rng rng(2);
  int tested = 0;
  for (int rep = 0; rep < 40 && tested < 12; ++rep) {
    const EdgeList el = gnp(12, 0.3, rng);
    if (el.num_edges() == 0 || el.num_edges() > 30) continue;
    ++tested;
    const VertexWeights w = uniform_weights(12, 0.5, 5.0, rng);
    const double opt = exact_weighted_vc_small(el, w);
    const WeightedVcResult r = local_ratio_weighted_vc(el, w);
    EXPECT_LE(cover_weight(r.cover, w), 2.0 * opt + 1e-9);
    EXPECT_LE(r.lower_bound, opt + 1e-9);  // certificate is a true LB
  }
  EXPECT_GE(tested, 5);
}

TEST(LocalRatio, UnitWeightsMatchUnweightedBehaviour) {
  // With unit weights local ratio degenerates to "take both endpoints of a
  // maximal matching": size is even and a 2-approximation.
  Rng rng(3);
  const EdgeList el = gnp(100, 0.05, rng);
  const VertexWeights w(100, 1.0);
  const WeightedVcResult r = local_ratio_weighted_vc(el, w);
  EXPECT_TRUE(r.cover.covers(el));
  EXPECT_EQ(r.cover.size() % 2, 0u);
}

TEST(LocalRatio, PrefersLightVertices) {
  // Star with an expensive center and cheap leaves: the optimal weighted
  // cover is the leaves... unless the center is cheaper than their sum.
  EdgeList el = star(5);  // center 0, leaves 1..4
  VertexWeights w{100.0, 1.0, 1.0, 1.0, 1.0};
  const WeightedVcResult r = local_ratio_weighted_vc(el, w);
  EXPECT_TRUE(r.cover.covers(el));
  // Optimal cover = the four leaves (cost 4); the 2-approx bound allows at
  // most 8, which rules out grabbing the 100-weight center.
  EXPECT_LE(cover_weight(r.cover, w), 8.0 + 1e-9);
}

TEST(GreedyWeightedVc, CoversOnRandomInstances) {
  Rng rng(4);
  for (int rep = 0; rep < 10; ++rep) {
    const EdgeList el = gnp(80, 0.08, rng);
    const VertexWeights w = uniform_weights(80, 0.5, 10.0, rng);
    const VertexCover c = greedy_weighted_vc(el, w);
    EXPECT_TRUE(c.covers(el));
  }
}

TEST(GreedyWeightedVc, TakesCheapCenterOfStar) {
  EdgeList el = star(10);
  VertexWeights w(10, 10.0);
  w[0] = 1.0;
  const VertexCover c = greedy_weighted_vc(el, w);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_TRUE(c.contains(0));
}

TEST(ExactWeightedVc, KnownValues) {
  EdgeList path3(3);
  path3.add(0, 1);
  path3.add(1, 2);
  EXPECT_DOUBLE_EQ(exact_weighted_vc_small(path3, {5.0, 2.0, 5.0}), 2.0);
  EXPECT_DOUBLE_EQ(exact_weighted_vc_small(path3, {1.0, 9.0, 1.0}), 2.0);
}

TEST(WeightedVcProtocol, FeasibleAndWeightAware) {
  Rng rng(5);
  const VertexId side = 2000;
  const EdgeList el = random_bipartite(side, side, 4.0 / side, rng);
  const VertexWeights w = uniform_weights(2 * side, 1.0, 64.0, rng);
  const WeightedVcProtocolResult r = weighted_vc_protocol(el, w, 8, rng);
  EXPECT_TRUE(r.solution.covers(el));
  EXPECT_GT(r.weight_classes, 1u);
  EXPECT_LE(r.weight_classes, 8u);  // log2(64) + 1 classes at most
  // Sanity against the centralized local-ratio: within a generous factor.
  const WeightedVcResult central = local_ratio_weighted_vc(el, w);
  EXPECT_LE(r.cover_cost,
            16.0 * cover_weight(central.cover, w) + 1e-9);
}

TEST(WeightedVcProtocol, UnitWeightsSingleClass) {
  Rng rng(6);
  const EdgeList el = gnp(1000, 6.0 / 1000, rng);
  const VertexWeights w(1000, 2.0);
  const WeightedVcProtocolResult r = weighted_vc_protocol(el, w, 4, rng);
  EXPECT_TRUE(r.solution.covers(el));
  EXPECT_EQ(r.weight_classes, 1u);
}

TEST(WeightedVcProtocol, ParallelMatchesSequential) {
  Rng gen(7);
  const EdgeList el = gnp(1500, 5.0 / 1500, gen);
  const VertexWeights w = uniform_weights(1500, 1.0, 32.0, gen);
  ThreadPool pool(4);
  Rng a(11), b(11);
  const WeightedVcProtocolResult seq = weighted_vc_protocol(el, w, 6, a, nullptr);
  const WeightedVcProtocolResult par = weighted_vc_protocol(el, w, 6, b, &pool);
  EXPECT_DOUBLE_EQ(seq.cover_cost, par.cover_cost);
}

}  // namespace
}  // namespace rcc
