// Tests for the degree-capped kernel (footnote 3's "small opt" coreset).
#include "coreset/kernel.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "coreset/compose.hpp"
#include "graph/generators.hpp"
#include "matching/max_matching.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(VertexCapKernel, RespectsCap) {
  Rng rng(1);
  const EdgeList el = gnp(200, 0.2, rng);
  for (VertexId cap : {1u, 3u, 7u}) {
    const EdgeList kernel = vertex_cap_kernel(el, cap);
    const auto deg = kernel.degrees();
    for (VertexId v = 0; v < 200; ++v) EXPECT_LE(deg[v], cap);
  }
}

TEST(VertexCapKernel, SubsetOfInput) {
  Rng rng(2);
  const EdgeList el = gnp(100, 0.1, rng);
  const EdgeList kernel = vertex_cap_kernel(el, 2);
  std::set<std::pair<VertexId, VertexId>> present;
  for (const Edge& e : el) present.insert({e.u, e.v});
  for (const Edge& e : kernel) EXPECT_TRUE(present.count({e.u, e.v}));
}

TEST(VertexCapKernel, LargeCapIsIdentity) {
  Rng rng(3);
  const EdgeList el = gnp(50, 0.3, rng);
  const EdgeList kernel = vertex_cap_kernel(el, 50);
  EXPECT_EQ(kernel.num_edges(), el.num_edges());
}

// The kernel lemma: cap >= MM(G) implies MM(kernel) == MM(G).
class KernelPreservation : public ::testing::TestWithParam<int> {};

TEST_P(KernelPreservation, MatchingPreservedWhenCapAtLeastMM) {
  Rng rng(GetParam());
  const EdgeList el = gnp(60, 0.08, rng);
  const std::size_t mm = maximum_matching_size(el);
  const EdgeList kernel =
      vertex_cap_kernel(el, static_cast<VertexId>(std::max<std::size_t>(mm, 1)));
  EXPECT_EQ(maximum_matching_size(kernel), mm);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelPreservation, ::testing::Range(1, 25));

TEST(VertexCapKernel, SmallCapStillHalfOfCap) {
  // Even with cap < MM, the kernel keeps a matching of size >= cap/2-ish
  // (a maximal matching among kept edges). Weak sanity bound: >= cap/2 when
  // the graph has a perfect matching and cap is small.
  Rng rng(99);
  const EdgeList el = random_perfect_matching(100, rng);
  const EdgeList kernel = vertex_cap_kernel(el, 1);
  // Perfect matching input: every edge survives the cap (degrees are 1).
  EXPECT_EQ(kernel.num_edges(), 100u);
}

TEST(KernelMatchingCoreset, ExactCompositionOnSmallOptInstances) {
  // Small-opt instance: a few disjoint bicliques (MM = 2 per biclique) plus
  // isolated vertices; MM(G) = 10 << n. With cap >= MM the composed
  // coresets preserve the optimum exactly — footnote 3's promise.
  Rng rng(4);
  const VertexId blocks = 5;
  EdgeList el(2000);
  for (VertexId b = 0; b < blocks; ++b) {
    const VertexId base = b * 40;
    for (VertexId i = 0; i < 4; ++i) {
      for (VertexId j = 0; j < 4; ++j) {
        el.add(base + i, base + 20 + j);
      }
    }
  }
  const std::size_t mm = maximum_matching_size(el);
  EXPECT_EQ(mm, 4u * blocks);

  const std::size_t k = 5;
  const auto pieces = random_partition(el, k, rng);
  const KernelMatchingCoreset coreset(static_cast<VertexId>(mm));
  std::vector<EdgeList> summaries;
  for (std::size_t i = 0; i < k; ++i) {
    PartitionContext ctx{2000, k, i, 0};
    summaries.push_back(coreset.build(pieces[i], ctx, rng));
  }
  // Kernels of pieces = pieces here (piece degrees <= 4 <= cap): exactness.
  const Matching composed =
      compose_matching_coresets(summaries, ComposeSolver::kMaximum, 0, rng);
  EXPECT_EQ(composed.size(), mm);
}

TEST(KernelMatchingCoreset, NameEncodesCap) {
  const KernelMatchingCoreset c(17);
  EXPECT_NE(c.name().find("cap=17"), std::string::npos);
}

TEST(KernelMatchingCoresetDeathTest, ZeroCapRejected) {
  EXPECT_DEATH(KernelMatchingCoreset(0), "RCC_CHECK");
}

}  // namespace
}  // namespace rcc
