#include "matching/hopcroft_karp.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "matching/blossom.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(HopcroftKarp, PerfectMatchingOnPlantedInstance) {
  Rng rng(1);
  const EdgeList el = random_perfect_matching(500, rng);
  const Matching m = hopcroft_karp(bipartite_graph(el, 500));
  EXPECT_EQ(m.size(), 500u);
  EXPECT_TRUE(m.valid());
  EXPECT_TRUE(m.subset_of(el));
}

TEST(HopcroftKarp, CompleteBipartiteMinSide) {
  const EdgeList el = complete_bipartite(7, 12);
  const Matching m = hopcroft_karp(bipartite_graph(el, 7));
  EXPECT_EQ(m.size(), 7u);
}

TEST(HopcroftKarp, EmptyGraph) {
  const Matching m = hopcroft_karp(bipartite_graph(EdgeList(10), 5));
  EXPECT_EQ(m.size(), 0u);
}

TEST(HopcroftKarp, KnownSmallInstance) {
  // L = {0,1,2}, R = {3,4,5}. 0-3, 0-4, 1-3, 2-5. Max matching = 3.
  EdgeList el(6);
  el.add(0, 4);
  el.add(0, 3);
  el.add(1, 3);
  el.add(2, 5);
  const Matching m = hopcroft_karp(bipartite_graph(el, 3));
  EXPECT_EQ(m.size(), 3u);
}

TEST(HopcroftKarp, HallViolatorLimitsMatching) {
  // Three left vertices all adjacent only to one right vertex.
  EdgeList el(4);
  el.add(0, 3);
  el.add(1, 3);
  el.add(2, 3);
  const Matching m = hopcroft_karp(bipartite_graph(el, 3));
  EXPECT_EQ(m.size(), 1u);
}

TEST(HopcroftKarp, StarPlusMatchingRequiresAugmentation) {
  // Greedy init may match 0-5 first; HK must recover the perfect matching.
  EdgeList el(10);
  for (VertexId r = 5; r < 10; ++r) el.add(0, r);
  el.add(1, 5);
  el.add(2, 6);
  el.add(3, 7);
  el.add(4, 8);
  const Matching m = hopcroft_karp(bipartite_graph(el, 5));
  EXPECT_EQ(m.size(), 5u);
}

TEST(HopcroftKarp, ParallelEdgesHandled) {
  EdgeList el(4);
  el.add(0, 2);
  el.add(0, 2);
  el.add(1, 3);
  const Matching m = hopcroft_karp(bipartite_graph(el, 2));
  EXPECT_EQ(m.size(), 2u);
}

TEST(HopcroftKarpDeathTest, RequiresBipartitionTag) {
  EXPECT_DEATH(hopcroft_karp(Graph(path(4))), "RCC_CHECK");
}

class HkVsBlossom : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(HkVsBlossom, AgreeOnRandomBipartiteGraphs) {
  const auto [seed, p] = GetParam();
  Rng rng(seed);
  const VertexId side = 120;
  const EdgeList el = random_bipartite(side, side, p, rng);
  const Matching hk = hopcroft_karp(bipartite_graph(el, side));
  const Matching bl = blossom_maximum_matching(Graph(el));
  EXPECT_EQ(hk.size(), bl.size());
  EXPECT_TRUE(hk.valid());
  EXPECT_TRUE(bl.valid());
  EXPECT_TRUE(hk.subset_of(el));
  EXPECT_TRUE(bl.subset_of(el));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HkVsBlossom,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.005, 0.02, 0.08)));

}  // namespace
}  // namespace rcc
