// Tests for Theorem 2's peeling coreset and the min-VC negative baseline
// (R1b, R1d).
#include "coreset/vc_coreset.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "coreset/compose.hpp"
#include "graph/generators.hpp"
#include "partition/partition.hpp"
#include "vertex_cover/konig.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(PeelingVcCoreset, NumLevelsMatchesDefinition) {
  // Delta = smallest integer with n/(k 2^Delta) <= 4 log2 n.
  const int delta = PeelingVcCoreset::num_levels(1 << 20, 16);
  const double n = 1 << 20;
  EXPECT_LE(n / (16.0 * std::exp2(delta)), 4.0 * std::log2(n));
  EXPECT_GT(n / (16.0 * std::exp2(delta - 1)), 4.0 * std::log2(n));
}

TEST(PeelingVcCoreset, ResidualMaxDegreeBounded) {
  // After peeling, no surviving vertex can exceed the last threshold
  // n/(k 2^Delta) <= 8 log2 n within the piece... the last *applied*
  // threshold is n/(k 2^Delta), so surviving degrees are < n/(k 2^Delta)
  // <= 4 log2 n (up to off-by-one from the loop bound: use 8 log2 n).
  Rng rng(1);
  const VertexId n = 1 << 15;
  const std::size_t k = 8;
  const EdgeList el = gnp(n, 6.0 / n, rng);
  const auto pieces = random_partition(el, k, rng);
  const PeelingVcCoreset coreset;
  PartitionContext ctx{n, k, 0, 0};
  const VcCoresetOutput out = coreset.build(pieces[0], ctx, rng);
  const auto deg = out.residual_edges.degrees();
  const double bound = 8.0 * std::log2(static_cast<double>(n));
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_LE(static_cast<double>(deg[v]), bound);
  }
}

TEST(PeelingVcCoreset, ComposedCoverIsFeasible) {
  Rng rng(2);
  const VertexId n = 4000;
  const std::size_t k = 5;
  const EdgeList el = gnp(n, 8.0 / n, rng);
  const auto pieces = random_partition(el, k, rng);
  const PeelingVcCoreset coreset;
  std::vector<VcCoresetOutput> summaries;
  for (std::size_t i = 0; i < k; ++i) {
    PartitionContext ctx{n, k, i, 0};
    summaries.push_back(coreset.build(pieces[i], ctx, rng));
  }
  const VertexCover cover = compose_vc_coresets(summaries, n, rng);
  EXPECT_TRUE(cover.covers(el));
}

// Theorem 2's guarantee: O(log n) approximation. We assert ratio <= 4 log2 n
// against the exact (Koenig) optimum on bipartite instances.
class Theorem2Sweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Theorem2Sweep, ComposedRatioWithinLogBound) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  const VertexId side = 4000;
  const VertexId n = 2 * side;
  const EdgeList el = random_bipartite(side, side, 3.0 / side, rng);
  const std::size_t opt = konig_vc_size(bipartite_graph(el, side));
  ASSERT_GT(opt, 0u);

  const auto pieces = random_partition(el, k, rng);
  const PeelingVcCoreset coreset;
  std::vector<VcCoresetOutput> summaries;
  for (std::size_t i = 0; i < static_cast<std::size_t>(k); ++i) {
    PartitionContext ctx{n, static_cast<std::size_t>(k), i, 0};
    summaries.push_back(coreset.build(pieces[i], ctx, rng));
  }
  const VertexCover cover = compose_vc_coresets(summaries, n, rng);
  EXPECT_TRUE(cover.covers(el));
  const double ratio = static_cast<double>(cover.size()) / opt;
  EXPECT_LE(ratio, 4.0 * std::log2(static_cast<double>(n)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem2Sweep,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(2, 8, 32)));

TEST(PeelingVcCoreset, CoresetSizeIsNearLinear) {
  // Size O(n log n): residual <= n * 8 log n edges, fixed <= n vertices.
  Rng rng(3);
  const VertexId n = 1 << 14;
  const std::size_t k = 8;
  const EdgeList el = gnp(n, 20.0 / n, rng);
  const auto pieces = random_partition(el, k, rng);
  const PeelingVcCoreset coreset;
  PartitionContext ctx{n, k, 0, 0};
  const VcCoresetOutput out = coreset.build(pieces[0], ctx, rng);
  const double bound = 8.0 * std::log2(static_cast<double>(n)) *
                           static_cast<double>(n) / 2.0 +
                       static_cast<double>(n);
  EXPECT_LE(static_cast<double>(out.size_items()), bound);
}

// R1d: min-VC-of-piece union degrades to Omega(k) on star forests while the
// peeling coreset stays constant-factor.
TEST(MinVcOfPieceCoreset, OmegaKFailureOnStarForest) {
  Rng rng(4);
  const VertexId stars = 400;
  const std::size_t k = 32;
  const EdgeList el = star_forest(stars, static_cast<VertexId>(k));
  const VertexId n = el.num_vertices();
  const std::size_t opt = stars;  // one center per star

  const auto pieces = random_partition(el, k, rng);

  auto run = [&](const VertexCoverCoreset& coreset) {
    std::vector<VcCoresetOutput> summaries;
    for (std::size_t i = 0; i < k; ++i) {
      PartitionContext ctx{n, k, i, 0};
      summaries.push_back(coreset.build(pieces[i], ctx, rng));
    }
    return compose_vc_coresets(summaries, n, rng);
  };

  const MinVcOfPieceCoreset bad(ForestTieBreak::kHighId);
  const PeelingVcCoreset good;
  const VertexCover bad_cover = run(bad);
  const VertexCover good_cover = run(good);
  EXPECT_TRUE(bad_cover.covers(el));
  EXPECT_TRUE(good_cover.covers(el));

  const double bad_ratio = static_cast<double>(bad_cover.size()) / opt;
  const double good_ratio = static_cast<double>(good_cover.size()) / opt;
  // Expectation: ~k/e machines hold exactly one edge of a given star and
  // contribute a useless leaf each. Assert a quarter of that, robustly.
  EXPECT_GE(bad_ratio, static_cast<double>(k) / 8.0);
  EXPECT_LE(good_ratio, 3.0);
}

TEST(MinVcOfPieceCoreset, EachSummaryCoversItsPiece) {
  Rng rng(5);
  const EdgeList el = star_forest(50, 8);
  const auto pieces = random_partition(el, 4, rng);
  const MinVcOfPieceCoreset coreset(ForestTieBreak::kHighId);
  for (std::size_t i = 0; i < 4; ++i) {
    PartitionContext ctx{el.num_vertices(), 4, i, 0};
    const VcCoresetOutput out = coreset.build(pieces[i], ctx, rng);
    const VertexCover cover =
        VertexCover::from_vertices(el.num_vertices(), out.fixed_vertices);
    EXPECT_TRUE(cover.covers(pieces[i]));
    EXPECT_TRUE(out.residual_edges.empty());
  }
}

}  // namespace
}  // namespace rcc
