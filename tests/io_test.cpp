#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(IO, RoundTripRandomGraph) {
  Rng rng(1);
  EdgeList original = gnp(100, 0.1, rng);
  const std::string path = temp_path("roundtrip.txt");
  write_edge_list(original, path);
  EdgeList loaded = read_edge_list(path);
  EXPECT_EQ(loaded.num_vertices(), original.num_vertices());
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  original.sort();
  loaded.sort();
  for (std::size_t i = 0; i < loaded.num_edges(); ++i) {
    EXPECT_EQ(loaded[i], original[i]);
  }
  std::remove(path.c_str());
}

TEST(IO, RoundTripEmptyGraph) {
  const std::string path = temp_path("empty.txt");
  write_edge_list(EdgeList(7), path);
  const EdgeList loaded = read_edge_list(path);
  EXPECT_EQ(loaded.num_vertices(), 7u);
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(IO, CommentsAreSkipped) {
  const std::string path = temp_path("comments.txt");
  {
    std::ofstream out(path);
    out << "# a comment\n3 2\n# another\n0 1\n1 2\n";
  }
  const EdgeList loaded = read_edge_list(path);
  EXPECT_EQ(loaded.num_vertices(), 3u);
  EXPECT_EQ(loaded.num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(IODeathTest, MissingFileAborts) {
  EXPECT_DEATH(read_edge_list("/nonexistent/definitely/not/here.txt"),
               "RCC_CHECK");
}

TEST(IODeathTest, TruncatedFileAborts) {
  const std::string path = temp_path("truncated.txt");
  {
    std::ofstream out(path);
    out << "3 2\n0 1\n";  // promises 2 edges, provides 1
  }
  EXPECT_DEATH(read_edge_list(path), "RCC_CHECK");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rcc
