#include "vertex_cover/peeling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "vertex_cover/konig.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(ParnasRon, ResidualDegreeIsBounded) {
  Rng rng(1);
  const VertexId n = 4000;
  const EdgeList el = gnp(n, 0.01, rng);
  const PeelingResult r = parnas_ron_peeling(el);
  const auto deg = r.residual.degrees();
  const double bound = 2.0 * std::max(4.0 * std::log2(static_cast<double>(n)), 1.0);
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_LE(static_cast<double>(deg[v]), bound) << v;
  }
}

TEST(ParnasRon, PeeledPlusResidualCoverAccountsForAllEdges) {
  Rng rng(2);
  const EdgeList el = gnp(1000, 0.02, rng);
  const PeelingResult r = parnas_ron_peeling(el);
  std::vector<bool> peeled(el.num_vertices(), false);
  for (VertexId v : r.all_peeled()) peeled[v] = true;
  // Every original edge is either incident on a peeled vertex or survives.
  std::size_t explained = r.residual.num_edges();
  for (const Edge& e : el) {
    if (peeled[e.u] || peeled[e.v]) ++explained;
  }
  EXPECT_EQ(explained, el.num_edges());
}

TEST(ParnasRon, VertexCoverIsFeasible) {
  Rng rng(3);
  for (int rep = 0; rep < 5; ++rep) {
    const EdgeList el = gnp(800, 0.015, rng);
    const VertexCover c = parnas_ron_vertex_cover(el, rng);
    EXPECT_TRUE(c.covers(el));
  }
}

TEST(ParnasRon, LogNApproximationOnBipartite) {
  Rng rng(4);
  const VertexId side = 1500;
  const EdgeList el = random_bipartite(side, side, 0.005, rng);
  const VertexCover c = parnas_ron_vertex_cover(el, rng);
  EXPECT_TRUE(c.covers(el));
  const std::size_t opt = konig_vc_size(bipartite_graph(el, side));
  const double log_n = std::log2(static_cast<double>(2 * side));
  EXPECT_LE(static_cast<double>(c.size()),
            std::max(4.0, 4.0 * log_n) * static_cast<double>(opt));
}

TEST(ParnasRon, EmptyGraph) {
  const PeelingResult r = parnas_ron_peeling(EdgeList(10));
  EXPECT_TRUE(r.residual.empty());
  EXPECT_TRUE(r.all_peeled().empty());
}

TEST(HypotheticalPeeling, RequiresValidCoverEdges) {
  // Edges not covered by the claimed cover abort (contract check).
  EdgeList el(4);
  el.add(0, 1);
  std::vector<bool> fake_cover(4, false);
  EXPECT_DEATH(hypothetical_peeling(el, fake_cover), "RCC_CHECK");
}

TEST(HypotheticalPeeling, SizeBoundLemma35) {
  // |union O_j u Obar_j| = O(log n) * VC(G): check with constant 16 which is
  // twice the paper's per-level factor of 8.
  Rng rng(5);
  const VertexId side = 800;
  const EdgeList el = random_bipartite(side, side, 0.01, rng);
  const Graph g = bipartite_graph(el, side);
  const VertexCover opt = konig_min_vertex_cover(g);
  const HypotheticalPeeling hp = hypothetical_peeling(el, opt.indicator());
  const double log_n = std::log2(static_cast<double>(2 * side));
  EXPECT_LE(static_cast<double>(hp.total_size()),
            16.0 * log_n * static_cast<double>(opt.size()) + 16.0);
}

TEST(HypotheticalPeeling, OLevelsAreInsideCover) {
  Rng rng(6);
  const VertexId side = 300;
  const EdgeList el = random_bipartite(side, side, 0.02, rng);
  const Graph g = bipartite_graph(el, side);
  const VertexCover opt = konig_min_vertex_cover(g);
  const HypotheticalPeeling hp = hypothetical_peeling(el, opt.indicator());
  for (VertexId v : hp.all_o()) EXPECT_TRUE(opt.contains(v));
  for (VertexId v : hp.all_obar()) EXPECT_FALSE(opt.contains(v));
}

TEST(HypotheticalPeeling, PerLevelObarBoundLemma35) {
  // Lemma 3.5's inner claim: |Obar_j| <= 8 VC(G) for every level j.
  Rng rng(7);
  const VertexId side = 600;
  const EdgeList el = random_bipartite(side, side, 0.015, rng);
  const Graph g = bipartite_graph(el, side);
  const VertexCover opt = konig_min_vertex_cover(g);
  const HypotheticalPeeling hp = hypothetical_peeling(el, opt.indicator());
  for (const auto& level : hp.obar_levels) {
    EXPECT_LE(level.size(), 8 * opt.size() + 8);
  }
}

}  // namespace
}  // namespace rcc
