// Tests for the MatchingRecovery game (Lemma 5.1's operative bound).
#include "lower_bounds/matching_recovery.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rcc {
namespace {

TEST(MatchingRecoveryInstance, BlockStructureIsAMatching) {
  Rng rng(1);
  const MatchingRecoveryInstance inst = make_matching_recovery(1000, 40, rng);
  EXPECT_EQ(inst.c, 25u);
  // alice_mate is a bijection inside every block.
  std::set<VertexId> seen;
  for (VertexId left = 0; left < inst.t; ++left) {
    const VertexId right = inst.alice_mate[left];
    EXPECT_TRUE(seen.insert(right).second);
    if (left < inst.c * inst.p) {
      EXPECT_EQ(inst.block_of_left(left), right / inst.p)
          << "matched across blocks";
    }
  }
  EXPECT_LT(inst.bob_block, inst.c);
}

TEST(MatchingRecoveryInstance, LeftoverTailIsMatchedWithinItself) {
  Rng rng(2);
  const MatchingRecoveryInstance inst = make_matching_recovery(103, 10, rng);
  EXPECT_EQ(inst.c, 10u);
  for (VertexId left = 100; left < 103; ++left) {
    EXPECT_GE(inst.alice_mate[left], 100u);
  }
}

TEST(MatchingRecoveryProtocol, FullBudgetRecoversWholeBlock) {
  Rng rng(3);
  const MatchingRecoveryInstance inst = make_matching_recovery(500, 20, rng);
  const MatchingRecoveryOutcome out =
      run_budgeted_matching_recovery(inst, 500, rng);
  EXPECT_EQ(out.recovered_edges, 20u);  // all of Bob's block
  EXPECT_EQ(out.message_words, 1000u);
}

TEST(MatchingRecoveryProtocol, ZeroBudgetRecoversNothing) {
  Rng rng(4);
  const MatchingRecoveryInstance inst = make_matching_recovery(500, 20, rng);
  const MatchingRecoveryOutcome out =
      run_budgeted_matching_recovery(inst, 0, rng);
  EXPECT_EQ(out.recovered_edges, 0u);
}

TEST(MatchingRecoveryProtocol, ExpectedRecoveryIsBudgetOverBlocks) {
  // Lemma 5.1's shape: E[recovered] = budget * p/t = budget / c.
  Rng rng(5);
  const VertexId t = 2000, p = 50;  // c = 40 blocks
  const std::size_t budget = 400;
  const int trials = 300;
  double total = 0.0;
  for (int rep = 0; rep < trials; ++rep) {
    const MatchingRecoveryInstance inst = make_matching_recovery(t, p, rng);
    total += static_cast<double>(
        run_budgeted_matching_recovery(inst, budget, rng).recovered_edges);
  }
  const double expected = static_cast<double>(budget) / 40.0;  // = 10
  EXPECT_NEAR(total / trials, expected, 1.0);
}

TEST(MatchingRecoveryProtocol, RecoveryLinearInBudget) {
  Rng rng(6);
  const VertexId t = 4000, p = 100;
  auto mean_recovered = [&](std::size_t budget) {
    double total = 0.0;
    const int trials = 100;
    for (int rep = 0; rep < trials; ++rep) {
      const MatchingRecoveryInstance inst = make_matching_recovery(t, p, rng);
      total += static_cast<double>(
          run_budgeted_matching_recovery(inst, budget, rng).recovered_edges);
    }
    return total / trials;
  };
  const double at_400 = mean_recovered(400);
  const double at_1600 = mean_recovered(1600);
  EXPECT_NEAR(at_1600 / std::max(at_400, 1e-9), 4.0, 1.0);
}

}  // namespace
}  // namespace rcc
