// Tests for Theorem 1's coreset and its negative counterpart (R1a, R1c).
#include "coreset/matching_coresets.hpp"

#include <gtest/gtest.h>

#include "coreset/adversarial.hpp"
#include "coreset/compose.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "matching/max_matching.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(MaximumMatchingCoreset, OutputIsAMaximumMatchingOfThePiece) {
  Rng rng(1);
  const EdgeList el = gnp(300, 0.05, rng);
  const auto pieces = random_partition(el, 4, rng);
  const MaximumMatchingCoreset coreset;
  for (std::size_t i = 0; i < 4; ++i) {
    PartitionContext ctx{300, 4, i, 0};
    const EdgeList summary = coreset.build(pieces[i], ctx, rng);
    EXPECT_TRUE(is_matching(summary));
    EXPECT_EQ(summary.num_edges(), maximum_matching_size(pieces[i]));
  }
}

TEST(MaximumMatchingCoreset, SizeIsAtMostNOverTwo) {
  Rng rng(2);
  const VertexId n = 500;
  const EdgeList el = gnp(n, 0.1, rng);
  const auto pieces = random_partition(el, 3, rng);
  const MaximumMatchingCoreset coreset;
  PartitionContext ctx{n, 3, 0, 0};
  EXPECT_LE(coreset.build(pieces[0], ctx, rng).num_edges(), n / 2);
}

// Theorem 1's guarantee: composed coresets contain a matching within a
// constant factor (the paper proves <= 9) of MM(G). Empirically the factor
// is much smaller; we assert the paper's bound which makes this test robust.
class Theorem1Sweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Theorem1Sweep, ComposedRatioWithinPaperBound) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  const VertexId n = 1200;
  const EdgeList el = gnp(n, 4.0 / n, rng);
  const std::size_t opt = maximum_matching_size(el);
  ASSERT_GT(opt, 0u);

  const MaximumMatchingCoreset coreset;
  const auto pieces = random_partition(el, k, rng);
  std::vector<EdgeList> summaries;
  for (std::size_t i = 0; i < static_cast<std::size_t>(k); ++i) {
    PartitionContext ctx{n, static_cast<std::size_t>(k), i, 0};
    summaries.push_back(coreset.build(pieces[i], ctx, rng));
  }
  const Matching composed =
      compose_matching_coresets(summaries, ComposeSolver::kMaximum, 0, rng);
  EXPECT_TRUE(composed.valid());
  EXPECT_TRUE(composed.subset_of(el));
  EXPECT_GE(9 * composed.size(), opt);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem1Sweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(2, 4, 8, 16)));

TEST(GreedyMatchCombiner, TraceIsMonotoneAndMatchesPaperAlgorithm) {
  Rng rng(3);
  const VertexId n = 800;
  const EdgeList el = gnp(n, 5.0 / n, rng);
  const auto pieces = random_partition(el, 6, rng);
  PartitionContext ctx{n, 6, 0, 0};
  const GreedyMatchTrace trace = greedy_match(pieces, ctx, rng);
  ASSERT_EQ(trace.step_sizes.size(), 6u);
  for (std::size_t i = 1; i < trace.step_sizes.size(); ++i) {
    EXPECT_GE(trace.step_sizes[i], trace.step_sizes[i - 1]);
  }
  EXPECT_EQ(trace.matching.size(), trace.step_sizes.back());
  EXPECT_TRUE(trace.matching.valid());
  EXPECT_TRUE(trace.matching.subset_of(el));
  // Lemma 3.1: the result is a constant-factor approximation.
  EXPECT_GE(9 * trace.matching.size(), maximum_matching_size(el));
}

TEST(MaximalMatchingCoreset, ProducesMaximalMatchingOfPiece) {
  Rng rng(4);
  const EdgeList el = gnp(200, 0.1, rng);
  const auto pieces = random_partition(el, 2, rng);
  const MaximalMatchingCoreset coreset(GreedyOrder::kRandom);
  PartitionContext ctx{200, 2, 0, 0};
  const EdgeList summary = coreset.build(pieces[0], ctx, rng);
  EXPECT_TRUE(is_matching(summary));
  EXPECT_TRUE(Matching::from_edges(summary).maximal_in(pieces[0]));
}

TEST(SubsampledCoreset, ExpectedSizeShrinksByAlpha) {
  Rng rng(5);
  const EdgeList el = random_perfect_matching(4000, rng);  // MM of piece = piece
  const double alpha = 4.0;
  const SubsampledMatchingCoreset coreset(alpha);
  PartitionContext ctx{8000, 1, 0, 4000};
  double total = 0;
  const int reps = 20;
  for (int r = 0; r < reps; ++r) {
    total += static_cast<double>(coreset.build(el, ctx, rng).num_edges());
  }
  EXPECT_NEAR(total / reps / 4000.0, 1.0 / alpha, 0.03);
}

TEST(SubsampledCoresetDeathTest, AlphaBelowOneRejected) {
  EXPECT_DEATH(SubsampledMatchingCoreset(0.5), "RCC_CHECK");
}

// R1c: the hub-gadget adversary drives the maximal-matching coreset to a
// Theta(k) approximation while the maximum-matching coreset stays near 1.
TEST(AdversarialMaximalCoreset, OmegaKGapOnHubGadget) {
  Rng rng(6);
  const VertexId pairs = 4096;
  const std::size_t k = 16;
  const HubGadget gadget = hub_gadget(pairs, static_cast<VertexId>(2 * pairs / k));
  const auto pieces = random_partition(gadget.edges, k, rng);

  auto compose_with = [&](const MatchingCoreset& coreset) {
    std::vector<EdgeList> summaries;
    for (std::size_t i = 0; i < k; ++i) {
      PartitionContext ctx{gadget.edges.num_vertices(), k, i, gadget.left_size};
      summaries.push_back(coreset.build(pieces[i], ctx, rng));
    }
    return compose_matching_coresets(summaries, ComposeSolver::kMaximum,
                                     gadget.left_size, rng);
  };

  const HubAdversarialMaximalCoreset bad(gadget);
  const MaximumMatchingCoreset good;
  const std::size_t opt = pairs;  // the planted perfect matching on pairs
  const std::size_t bad_size = compose_with(bad).size();
  const std::size_t good_size = compose_with(good).size();

  const double bad_ratio = static_cast<double>(opt) / bad_size;
  const double good_ratio = static_cast<double>(opt) / good_size;
  EXPECT_GE(bad_ratio, static_cast<double>(k) / 4.0);
  EXPECT_LE(good_ratio, 1.5);
}

TEST(CoresetNames, AreDistinct) {
  const MaximumMatchingCoreset a;
  const MaximalMatchingCoreset b(GreedyOrder::kGiven);
  const SubsampledMatchingCoreset c(2.0);
  EXPECT_NE(a.name(), b.name());
  EXPECT_NE(a.name(), c.name());
}

}  // namespace
}  // namespace rcc
